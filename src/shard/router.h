/**
 * @file
 * ShardRouter: the front door of a multi-worker serving tier.
 *
 * The router owns one ShardClient per worker and presents the single-
 * server surface (submit/poll/wait/cancel) over the whole tier, with
 * router-level tickets (gids) that survive worker failure. Policies:
 *
 *  - Prefix-affinity routing: requests are routed by rendezvous
 *    hashing on their reuse identity (seed, conditioning, mode), so
 *    near-duplicate requests land on the worker whose reuse cache
 *    already holds their prefix. A warm route is only overridden when
 *    the affinity worker is overloaded relative to the least-loaded
 *    one by more than DITTO_SHARD_AFFINITY_SLACK outstanding requests
 *    — then deadline pressure wins over cache warmth.
 *  - Failure detection + cold resubmission: any transport failure
 *    marks the worker dead and every outstanding route on it is
 *    resubmitted to a healthy worker from step 0. That is bitwise-safe
 *    by the determinism contract — a request's trajectory is a pure
 *    function of (model, seed, mode, steps), so a cold rerun produces
 *    the identical image. With no healthy worker left, the route
 *    fails with RequestStatus::Rejected.
 *  - Explicit migration: migrate(gid, worker) relocates a request's
 *    partial progress (MigrateOut -> MigrateIn) for rebalancing and
 *    drain-ahead-of-maintenance; resumed results stay bitwise
 *    identical for exact modes.
 *  - Merged metrics: metricsJson() embeds every worker's export and
 *    rolls up reuse counters across workers, using the cache
 *    generation to disambiguate a worker restart (counters reset; add
 *    absolute values) from a cache clear (counters survive; add
 *    deltas) so aggregate hit counts never double-count.
 *
 * All workers must serve the same compiled model — identity
 * ((spec hash, calibration digest)) is checked at addWorker.
 *
 * The router can additionally serve the shard protocol itself
 * (serve()): a front-door socket speaking Submit/Poll/Cancel/
 * QueryState/Metrics/Drain with gids for tickets, so load generators
 * talk to a 4-worker tier exactly as they talk to one worker.
 */
#ifndef DITTO_SHARD_ROUTER_H
#define DITTO_SHARD_ROUTER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/net.h"
#include "shard/client.h"

namespace ditto {
namespace shard {

/** Router tuning knobs; both have environment overrides. */
struct RouterConfig
{
    /**
     * How many outstanding requests the affinity worker may carry
     * above the least-loaded worker before affinity is overridden
     * (DITTO_SHARD_AFFINITY_SLACK).
     */
    int64_t affinitySlack = 2;

    /** wait() poll interval in microseconds (DITTO_SHARD_POLL_US). */
    int64_t pollMicros = 500;

    static RouterConfig fromEnv();
};

/** Front-door router over N shard workers. Thread-safe. */
class ShardRouter
{
  public:
    explicit ShardRouter(RouterConfig cfg = RouterConfig::fromEnv());
    ~ShardRouter();

    ShardRouter(const ShardRouter &) = delete;
    ShardRouter &operator=(const ShardRouter &) = delete;

    /**
     * Connect a worker socket. The first worker fixes the tier's model
     * identity; later workers must match it (false + why otherwise).
     * Returns the worker index on success via *idx (optional).
     */
    bool addWorker(const std::string &socketPath, std::string *why = nullptr,
                   int *idx = nullptr);

    int numWorkers() const;
    int numHealthy() const;
    const WorkerInfo &info() const { return info_; }

    /**
     * Route and submit; returns a router ticket (gid). Never fails at
     * the router: if no worker accepts, the gid resolves to a Rejected
     * result.
     */
    uint64_t submit(const DenoiseRequest &req);

    /** True while `gid` is known (issued and not yet consumed). */
    bool knows(uint64_t gid) const;

    /**
     * Index of the worker currently serving `gid`; -1 when the route
     * already resolved (or is mid-rehome). Observability for tests
     * and rebalancers picking migration targets.
     */
    int routeWorker(uint64_t gid) const;

    /**
     * Non-blocking result retrieval; true exactly once per gid. A
     * worker failure observed underneath resolves through cold
     * resubmission transparently.
     */
    bool poll(uint64_t gid, DenoiseResult *out);

    /** Block until `gid` resolves; the gid is consumed. */
    DenoiseResult wait(uint64_t gid);

    /** Cancel wherever the request currently lives. */
    bool cancel(uint64_t gid);

    /** Lifecycle state (terminal once the result is ready). */
    RequestStatus queryState(uint64_t gid);

    /**
     * Relocate a live request onto worker `target` via
     * MigrateOut/MigrateIn. False when the request already finished,
     * the source declined, or no worker could adopt the state (the
     * request is then failed or still resolving locally — poll the
     * gid either way).
     */
    bool migrate(uint64_t gid, int target);

    /** Drain every healthy worker (blocks until all finish). */
    void drainAll();

    /**
     * Merged metrics: router counters, the cross-worker reuse roll-up
     * and each worker's own export embedded under "workers".
     */
    std::string metricsJson();

    /** Serve the shard protocol on a front-door socket. */
    bool serve(const std::string &socketPath, std::string *why = nullptr);
    void stopServing();

  private:
    struct Worker
    {
        std::unique_ptr<ShardClient> client;
        bool healthy = false; //!< eligible for new routes
        bool dead = false;    //!< transport lost; routes were rehomed
        int64_t outstanding = 0;

        /**
         * Reuse roll-up state: the counters last scraped from this
         * worker's metrics export, and the totals it contributed from
         * *previous* cache epochs (restarts). Current epoch counters
         * are added on top at merge time.
         */
        uint64_t lastGen = 0;
        uint64_t lastHits = 0, lastMisses = 0, lastStores = 0;
        uint64_t lastSaved = 0;
        uint64_t baseHits = 0, baseMisses = 0, baseStores = 0;
        uint64_t baseSaved = 0;
    };

    /** One routed request, alive until its result is consumed. */
    struct Route
    {
        DenoiseRequest req; //!< for cold resubmission after failure
        int worker = -1;    //!< current owner (-1 once resolved)
        uint64_t remoteId = 0;
        bool done = false;
        DenoiseResult result; //!< valid when done
    };

    // All *Locked methods require mu_ held.
    int pickWorkerLocked(const DenoiseRequest &req) const;
    int leastLoadedLocked() const;
    void markDeadLocked(int idx);
    void resolveLocked(uint64_t gid, Route &rt, DenoiseResult &&res);
    bool pollRouteLocked(uint64_t gid, Route &rt);
    void scrapeReuseLocked(Worker &w, const std::string &json);

    void frontDoorLoop();
    void serveFrontConnection(int fd);

    const RouterConfig cfg_;
    mutable std::mutex mu_;
    std::vector<Worker> workers_;
    WorkerInfo info_;
    bool haveInfo_ = false;
    std::unordered_map<uint64_t, Route> routes_;
    uint64_t nextGid_ = 1;

    // Router-level counters (monotonic).
    uint64_t submitted_ = 0;
    uint64_t completed_ = 0;
    uint64_t resubmitted_ = 0;
    uint64_t migrations_ = 0;
    uint64_t failovers_ = 0; //!< workers marked dead

    // Front-door serving state.
    net::UnixListener frontDoor_;
    std::thread frontThread_;
    std::mutex connMu_;
    std::vector<std::thread> frontConns_;
    std::vector<int> frontFds_;
    std::atomic<bool> frontStopping_{false};
};

} // namespace shard
} // namespace ditto

#endif // DITTO_SHARD_ROUTER_H
