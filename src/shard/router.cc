/**
 * @file
 * ShardRouter implementation (policies in router.h).
 */
#include "shard/router.h"

#include <sys/socket.h>

#include <cctype>
#include <chrono>
#include <thread>
#include <utility>

#include "common/env.h"
#include "common/logging.h"

namespace ditto {
namespace shard {

namespace {

/** 64-bit finalizer (splitmix64) — the rendezvous-hash mixer. */
uint64_t
mix64(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

/**
 * A request's reuse identity for routing: same (seed, conditioning,
 * mode) => same key => same affinity worker — the worker whose reuse
 * cache may already hold this request's prefix (src/serve/prefix_key.h
 * hashes the same triple plus the model identity, which is uniform
 * across the tier).
 */
uint64_t
affinityKey(const DenoiseRequest &req)
{
    uint64_t h = mix64(req.seed);
    h = mix64(h ^ req.conditioning);
    h = mix64(h ^ (static_cast<uint64_t>(req.mode) + 1));
    return h;
}

/** Scrape an unsigned JSON number by key (first occurrence). */
bool
scrapeU64(const std::string &json, const char *key, uint64_t *out)
{
    const std::string pat = std::string("\"") + key + "\":";
    const size_t p = json.find(pat);
    if (p == std::string::npos)
        return false;
    size_t i = p + pat.size();
    uint64_t v = 0;
    bool any = false;
    while (i < json.size() &&
           std::isdigit(static_cast<unsigned char>(json[i]))) {
        v = v * 10 + static_cast<uint64_t>(json[i] - '0');
        ++i;
        any = true;
    }
    if (any)
        *out = v;
    return any;
}

} // namespace

RouterConfig
RouterConfig::fromEnv()
{
    RouterConfig cfg;
    cfg.affinitySlack =
        env::readInt64("DITTO_SHARD_AFFINITY_SLACK", cfg.affinitySlack, 0,
                       1 << 20);
    cfg.pollMicros = env::readInt64("DITTO_SHARD_POLL_US", cfg.pollMicros, 1,
                                    10'000'000);
    return cfg;
}

ShardRouter::ShardRouter(RouterConfig cfg) : cfg_(cfg) {}

ShardRouter::~ShardRouter()
{
    stopServing();
}

bool
ShardRouter::addWorker(const std::string &socketPath, std::string *why,
                       int *idx)
{
    auto client = std::make_unique<ShardClient>();
    if (!client->connect(socketPath, why))
        return false;
    std::lock_guard<std::mutex> lk(mu_);
    if (!haveInfo_) {
        info_ = client->info();
        haveInfo_ = true;
    } else if (client->info().specHash != info_.specHash ||
               client->info().calibDigest != info_.calibDigest) {
        if (why)
            *why = "worker " + socketPath +
                   " serves a different model than the tier";
        return false;
    }
    Worker w;
    w.client = std::move(client);
    w.healthy = true;
    workers_.push_back(std::move(w));
    if (idx)
        *idx = static_cast<int>(workers_.size()) - 1;
    return true;
}

int
ShardRouter::numWorkers() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return static_cast<int>(workers_.size());
}

int
ShardRouter::numHealthy() const
{
    std::lock_guard<std::mutex> lk(mu_);
    int n = 0;
    for (const Worker &w : workers_)
        n += w.healthy ? 1 : 0;
    return n;
}

int
ShardRouter::leastLoadedLocked() const
{
    int best = -1;
    for (size_t i = 0; i < workers_.size(); ++i) {
        if (!workers_[i].healthy)
            continue;
        if (best < 0 ||
            workers_[i].outstanding < workers_[static_cast<size_t>(best)]
                                          .outstanding)
            best = static_cast<int>(i);
    }
    return best;
}

int
ShardRouter::pickWorkerLocked(const DenoiseRequest &req) const
{
    // Rendezvous hash: the healthy worker with the highest
    // (key, worker) score. Stable under worker death — keys that
    // hashed elsewhere keep their placement.
    const uint64_t key = affinityKey(req);
    int affinity = -1;
    uint64_t bestScore = 0;
    for (size_t i = 0; i < workers_.size(); ++i) {
        if (!workers_[i].healthy)
            continue;
        const uint64_t score =
            mix64(key ^ ((i + 1) * 0x9e3779b97f4a7c15ull));
        if (affinity < 0 || score > bestScore) {
            affinity = static_cast<int>(i);
            bestScore = score;
        }
    }
    if (affinity < 0)
        return -1;
    const int least = leastLoadedLocked();
    if (workers_[static_cast<size_t>(affinity)].outstanding >
        workers_[static_cast<size_t>(least)].outstanding +
            cfg_.affinitySlack)
        return least; // overloaded: load beats cache warmth
    return affinity;
}

void
ShardRouter::resolveLocked(uint64_t gid, Route &rt, DenoiseResult &&res)
{
    if (rt.worker >= 0)
        --workers_[static_cast<size_t>(rt.worker)].outstanding;
    rt.worker = -1;
    rt.done = true;
    rt.result = std::move(res);
    rt.result.id = gid; // router tickets, not worker tickets
    ++completed_;
}

void
ShardRouter::markDeadLocked(int idx)
{
    Worker &w = workers_[static_cast<size_t>(idx)];
    if (w.dead)
        return;
    w.dead = true;
    w.healthy = false;
    ++failovers_;

    // Cold-resubmit every outstanding route of the dead worker: a
    // request's trajectory is a pure function of (model, seed, mode,
    // steps), so a from-scratch rerun yields the identical image.
    std::vector<uint64_t> orphans;
    for (auto &[gid, rt] : routes_) {
        if (!rt.done && rt.worker == idx) {
            rt.worker = -1;
            --w.outstanding;
            orphans.push_back(gid);
        }
    }
    for (size_t n = 0; n < orphans.size(); ++n) {
        const uint64_t gid = orphans[n];
        Route &rt = routes_.at(gid);
        for (;;) {
            const int target = pickWorkerLocked(rt.req);
            if (target < 0) {
                DenoiseResult res;
                res.status = RequestStatus::Rejected;
                res.slo = rt.req.slo;
                resolveLocked(gid, rt, std::move(res));
                break;
            }
            Worker &tw = workers_[static_cast<size_t>(target)];
            uint64_t remoteId = 0;
            if (tw.client->submit(rt.req, &remoteId)) {
                rt.worker = target;
                rt.remoteId = remoteId;
                ++tw.outstanding;
                ++resubmitted_;
                break;
            }
            tw.healthy = false;
            if (!tw.client->connected() && !tw.dead) {
                // This worker died too: orphan its routes as well.
                tw.dead = true;
                ++failovers_;
                for (auto &[ogid, ort] : routes_) {
                    if (!ort.done && ort.worker == target) {
                        ort.worker = -1;
                        --tw.outstanding;
                        orphans.push_back(ogid);
                    }
                }
            }
        }
    }
}

uint64_t
ShardRouter::submit(const DenoiseRequest &req)
{
    std::lock_guard<std::mutex> lk(mu_);
    const uint64_t gid = nextGid_++;
    Route rt;
    rt.req = req;
    ++submitted_;
    for (;;) {
        const int idx = pickWorkerLocked(req);
        if (idx < 0) {
            DenoiseResult res;
            res.status = RequestStatus::Rejected;
            res.slo = req.slo;
            auto [it, ok] = routes_.emplace(gid, std::move(rt));
            DITTO_ASSERT(ok, "duplicate gid");
            resolveLocked(gid, it->second, std::move(res));
            return gid;
        }
        Worker &w = workers_[static_cast<size_t>(idx)];
        uint64_t remoteId = 0;
        if (w.client->submit(req, &remoteId)) {
            rt.worker = idx;
            rt.remoteId = remoteId;
            ++w.outstanding;
            routes_.emplace(gid, std::move(rt));
            return gid;
        }
        // Refused (drained) or dead — either way stop routing to it;
        // a dead worker additionally orphans its outstanding routes.
        if (w.client->connected())
            w.healthy = false;
        else
            markDeadLocked(idx);
    }
}

bool
ShardRouter::knows(uint64_t gid) const
{
    std::lock_guard<std::mutex> lk(mu_);
    return routes_.count(gid) != 0;
}

int
ShardRouter::routeWorker(uint64_t gid) const
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = routes_.find(gid);
    return it == routes_.end() || it->second.done ? -1
                                                  : it->second.worker;
}

bool
ShardRouter::pollRouteLocked(uint64_t gid, Route &rt)
{
    if (rt.done)
        return true;
    if (rt.worker < 0)
        return false;
    Worker &w = workers_[static_cast<size_t>(rt.worker)];
    bool ready = false;
    DenoiseResult res;
    if (w.client->poll(rt.remoteId, &ready, &res)) {
        if (ready)
            resolveLocked(gid, rt, std::move(res));
        return rt.done;
    }
    if (!w.client->connected()) {
        markDeadLocked(rt.worker); // rehomes (or rejects) this route
        return rt.done;
    }
    // Protocol refusal on a ticket we thought live (e.g. the worker
    // restarted behind the same socket): treat the route as lost and
    // resubmit it cold through the failover machinery.
    const int idx = rt.worker;
    rt.worker = -1;
    --w.outstanding;
    w.healthy = false;
    (void)idx;
    for (;;) {
        const int target = pickWorkerLocked(rt.req);
        if (target < 0) {
            DenoiseResult rej;
            rej.status = RequestStatus::Rejected;
            rej.slo = rt.req.slo;
            resolveLocked(gid, rt, std::move(rej));
            return true;
        }
        Worker &tw = workers_[static_cast<size_t>(target)];
        uint64_t remoteId = 0;
        if (tw.client->submit(rt.req, &remoteId)) {
            rt.worker = target;
            rt.remoteId = remoteId;
            ++tw.outstanding;
            ++resubmitted_;
            return false;
        }
        if (tw.client->connected())
            tw.healthy = false;
        else
            markDeadLocked(target);
        if (rt.done)
            return true;
    }
}

bool
ShardRouter::poll(uint64_t gid, DenoiseResult *out)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = routes_.find(gid);
    if (it == routes_.end())
        DITTO_FATAL("ShardRouter::poll on unknown/consumed gid " << gid);
    if (!pollRouteLocked(gid, it->second))
        return false;
    *out = std::move(it->second.result);
    routes_.erase(it);
    return true;
}

DenoiseResult
ShardRouter::wait(uint64_t gid)
{
    for (;;) {
        {
            std::lock_guard<std::mutex> lk(mu_);
            auto it = routes_.find(gid);
            if (it == routes_.end())
                DITTO_FATAL("ShardRouter::wait on unknown/consumed gid "
                            << gid);
            if (pollRouteLocked(gid, it->second)) {
                DenoiseResult res = std::move(it->second.result);
                routes_.erase(it);
                return res;
            }
        }
        std::this_thread::sleep_for(
            std::chrono::microseconds(cfg_.pollMicros));
    }
}

bool
ShardRouter::cancel(uint64_t gid)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = routes_.find(gid);
    if (it == routes_.end() || it->second.done || it->second.worker < 0)
        return false;
    Route &rt = it->second;
    Worker &w = workers_[static_cast<size_t>(rt.worker)];
    bool ok = false;
    if (!w.client->cancel(rt.remoteId, &ok)) {
        if (!w.client->connected())
            markDeadLocked(rt.worker);
        return false;
    }
    return ok;
}

RequestStatus
ShardRouter::queryState(uint64_t gid)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = routes_.find(gid);
    if (it == routes_.end())
        DITTO_FATAL("ShardRouter::queryState on unknown/consumed gid "
                    << gid);
    Route &rt = it->second;
    if (rt.done)
        return rt.result.status;
    if (rt.worker < 0)
        return RequestStatus::Queued; // mid-rehome limbo
    Worker &w = workers_[static_cast<size_t>(rt.worker)];
    RequestStatus st = RequestStatus::Queued;
    if (w.client->queryState(rt.remoteId, &st))
        return st;
    if (!w.client->connected()) {
        markDeadLocked(rt.worker);
        return rt.done ? rt.result.status : RequestStatus::Queued;
    }
    return RequestStatus::Queued;
}

bool
ShardRouter::migrate(uint64_t gid, int target)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = routes_.find(gid);
    if (it == routes_.end())
        return false;
    Route &rt = it->second;
    if (rt.done || rt.worker < 0 || rt.worker == target)
        return false;
    if (target < 0 || target >= static_cast<int>(workers_.size()) ||
        !workers_[static_cast<size_t>(target)].healthy)
        return false;

    const int src = rt.worker;
    Worker &sw = workers_[static_cast<size_t>(src)];
    MigratedWire wire;
    if (!sw.client->migrateOut(rt.remoteId, &wire)) {
        if (!sw.client->connected())
            markDeadLocked(src); // rehomes this route cold
        return false; // declined: the request stays/finishes on src
    }
    --sw.outstanding;
    rt.worker = -1;

    // Adopt the state on the requested target, falling back to any
    // healthy worker; as a last resort resubmit cold from the
    // portable request (progress lost, correctness kept).
    for (int attempt = 0; attempt < static_cast<int>(workers_.size()) + 1;
         ++attempt) {
        const int idx = attempt == 0
                            ? target
                            : leastLoadedLocked();
        if (idx < 0)
            break;
        if (attempt > 0 && idx == target)
            break; // wrapped around
        Worker &tw = workers_[static_cast<size_t>(idx)];
        uint64_t remoteId = 0;
        if (tw.client->migrateIn(wire, &remoteId)) {
            rt.worker = idx;
            rt.remoteId = remoteId;
            ++tw.outstanding;
            ++migrations_;
            return idx == target;
        }
        if (!tw.client->connected())
            markDeadLocked(idx);
        else
            tw.healthy = false;
        if (rt.done)
            return false;
    }
    // No adopter: continue the request cold (wire.req is the portable
    // effective request with its deadline re-expressed as a budget).
    rt.req = wire.req;
    for (;;) {
        const int idx = pickWorkerLocked(rt.req);
        if (idx < 0) {
            DenoiseResult rej;
            rej.status = RequestStatus::Rejected;
            rej.slo = rt.req.slo;
            resolveLocked(gid, rt, std::move(rej));
            return false;
        }
        Worker &tw = workers_[static_cast<size_t>(idx)];
        uint64_t remoteId = 0;
        if (tw.client->submit(rt.req, &remoteId)) {
            rt.worker = idx;
            rt.remoteId = remoteId;
            ++tw.outstanding;
            ++resubmitted_;
            return false;
        }
        if (tw.client->connected())
            tw.healthy = false;
        else
            markDeadLocked(idx);
        if (rt.done)
            return false;
    }
}

void
ShardRouter::drainAll()
{
    std::lock_guard<std::mutex> lk(mu_);
    for (size_t i = 0; i < workers_.size(); ++i) {
        Worker &w = workers_[i];
        if (!w.client->connected())
            continue;
        if (!w.client->drain() && !w.client->connected())
            markDeadLocked(static_cast<int>(i));
        else
            w.healthy = false; // drained workers accept no new work
    }
}

void
ShardRouter::scrapeReuseLocked(Worker &w, const std::string &json)
{
    uint64_t gen = 0, hits = 0, misses = 0, stores = 0, saved = 0;
    if (!scrapeU64(json, "generation", &gen) ||
        !scrapeU64(json, "hits", &hits) ||
        !scrapeU64(json, "misses", &misses) ||
        !scrapeU64(json, "stores", &stores) ||
        !scrapeU64(json, "steps_saved", &saved))
        return;
    // A worker restart resets both the generation and the counters; a
    // cache clear() bumps the generation but counters survive. Either
    // counter running backwards, or the generation running backwards,
    // therefore means "new process": bank the previous epoch's totals
    // so the tier-wide sums never double-count and never lose history.
    if (gen < w.lastGen || hits < w.lastHits || misses < w.lastMisses) {
        w.baseHits += w.lastHits;
        w.baseMisses += w.lastMisses;
        w.baseStores += w.lastStores;
        w.baseSaved += w.lastSaved;
    }
    w.lastGen = gen;
    w.lastHits = hits;
    w.lastMisses = misses;
    w.lastStores = stores;
    w.lastSaved = saved;
}

std::string
ShardRouter::metricsJson()
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<std::string> workerJson(workers_.size());
    for (size_t i = 0; i < workers_.size(); ++i) {
        Worker &w = workers_[i];
        if (!w.client->connected())
            continue;
        std::string json;
        if (!w.client->metricsJson(&json)) {
            if (!w.client->connected())
                markDeadLocked(static_cast<int>(i));
            continue;
        }
        scrapeReuseLocked(w, json);
        workerJson[i] = std::move(json);
    }

    uint64_t hits = 0, misses = 0, stores = 0, saved = 0;
    int healthy = 0;
    for (const Worker &w : workers_) {
        hits += w.baseHits + w.lastHits;
        misses += w.baseMisses + w.lastMisses;
        stores += w.baseStores + w.lastStores;
        saved += w.baseSaved + w.lastSaved;
        healthy += w.healthy ? 1 : 0;
    }
    const double rate =
        hits + misses
            ? static_cast<double>(hits) / static_cast<double>(hits + misses)
            : 0.0;

    std::string out = "{\"router\":{";
    out += "\"workers\":" + std::to_string(workers_.size());
    out += ",\"healthy\":" + std::to_string(healthy);
    out += ",\"submitted\":" + std::to_string(submitted_);
    out += ",\"completed\":" + std::to_string(completed_);
    out += ",\"resubmitted\":" + std::to_string(resubmitted_);
    out += ",\"migrations\":" + std::to_string(migrations_);
    out += ",\"failovers\":" + std::to_string(failovers_);
    out += "},\"reuse\":{";
    out += "\"hits\":" + std::to_string(hits);
    out += ",\"misses\":" + std::to_string(misses);
    out += ",\"stores\":" + std::to_string(stores);
    out += ",\"steps_saved\":" + std::to_string(saved);
    out += ",\"hit_rate\":" + std::to_string(rate);
    out += "},\"workers\":[";
    for (size_t i = 0; i < workers_.size(); ++i) {
        if (i)
            out += ",";
        out += workerJson[i].empty() ? "null" : workerJson[i];
    }
    out += "]}";
    return out;
}

bool
ShardRouter::serve(const std::string &socketPath, std::string *why)
{
    if (!frontDoor_.listen(socketPath, why))
        return false;
    frontStopping_.store(false);
    frontThread_ = std::thread([this] { frontDoorLoop(); });
    return true;
}

void
ShardRouter::stopServing()
{
    if (frontStopping_.exchange(true))
        return;
    frontDoor_.close();
    if (frontThread_.joinable())
        frontThread_.join();
    std::vector<std::thread> conns;
    {
        std::lock_guard<std::mutex> lk(connMu_);
        for (int fd : frontFds_)
            ::shutdown(fd, SHUT_RDWR);
        conns = std::move(frontConns_);
        frontConns_.clear();
    }
    for (auto &t : conns)
        if (t.joinable())
            t.join();
}

void
ShardRouter::frontDoorLoop()
{
    while (!frontStopping_.load()) {
        const int fd = frontDoor_.accept();
        if (fd < 0)
            return;
        std::lock_guard<std::mutex> lk(connMu_);
        if (frontStopping_.load()) {
            net::closeFd(fd);
            return;
        }
        frontFds_.push_back(fd);
        frontConns_.emplace_back([this, fd] { serveFrontConnection(fd); });
    }
}

void
ShardRouter::serveFrontConnection(int fd)
{
    auto sendError = [fd](const std::string &why) {
        ByteWriter w;
        w.str(why);
        return net::sendFrame(fd, static_cast<uint32_t>(Msg::Error),
                              w.take());
    };

    net::Frame frame;
    while (!frontStopping_.load() && net::recvFrame(fd, &frame)) {
        ByteReader r(frame.payload.data(), frame.payload.size());
        bool ok = true;
        switch (static_cast<Msg>(frame.type)) {
          case Msg::Ping:
            ok = net::sendFrame(fd, static_cast<uint32_t>(Msg::PingOk), {});
            break;
          case Msg::Info: {
            ByteWriter w;
            putInfo(w, info_);
            ok = net::sendFrame(fd, static_cast<uint32_t>(Msg::InfoRe),
                                w.take());
            break;
          }
          case Msg::Submit: {
            DenoiseRequest req;
            if (!getRequest(r, &req) || r.remaining() != 0) {
                ok = sendError("malformed submit");
                break;
            }
            ByteWriter w;
            w.u64(submit(req));
            ok = net::sendFrame(fd, static_cast<uint32_t>(Msg::SubmitOk),
                                w.take());
            break;
          }
          case Msg::Poll: {
            uint64_t gid = 0;
            if (!r.u64(&gid) || !knows(gid)) {
                ok = sendError("unknown ticket");
                break;
            }
            ByteWriter w;
            DenoiseResult res;
            if (poll(gid, &res)) {
                w.u8(1);
                putResult(w, res);
            } else {
                w.u8(0);
            }
            ok = net::sendFrame(fd, static_cast<uint32_t>(Msg::PollRe),
                                w.take());
            break;
          }
          case Msg::Cancel: {
            uint64_t gid = 0;
            if (!r.u64(&gid) || !knows(gid)) {
                ok = sendError("unknown ticket");
                break;
            }
            ByteWriter w;
            w.u8(cancel(gid) ? 1 : 0);
            ok = net::sendFrame(fd, static_cast<uint32_t>(Msg::CancelRe),
                                w.take());
            break;
          }
          case Msg::QueryState: {
            uint64_t gid = 0;
            if (!r.u64(&gid) || !knows(gid)) {
                ok = sendError("unknown ticket");
                break;
            }
            ByteWriter w;
            w.u8(static_cast<uint8_t>(queryState(gid)));
            ok = net::sendFrame(fd, static_cast<uint32_t>(Msg::StateRe),
                                w.take());
            break;
          }
          case Msg::Metrics: {
            ByteWriter w;
            w.str(metricsJson());
            ok = net::sendFrame(fd, static_cast<uint32_t>(Msg::MetricsRe),
                                w.take());
            break;
          }
          case Msg::Drain:
            drainAll();
            ok = net::sendFrame(fd, static_cast<uint32_t>(Msg::DrainRe), {});
            break;
          default:
            ok = sendError("unsupported at the front door");
            break;
        }
        if (!ok)
            break;
    }
    net::closeFd(fd);
    std::lock_guard<std::mutex> lk(connMu_);
    for (auto it = frontFds_.begin(); it != frontFds_.end(); ++it) {
        if (*it == fd) {
            frontFds_.erase(it);
            break;
        }
    }
}

} // namespace shard
} // namespace ditto
