/**
 * @file
 * The shard-tier RPC protocol: message types and payload codecs.
 *
 * Workers (src/shard/worker.h) and the front-door router
 * (src/shard/router.h) speak length-prefixed binary frames over
 * Unix-domain sockets (framing in src/common/net.h). Each RPC is one
 * request frame answered by exactly one reply frame on the same
 * connection; connections are sequential (no pipelining), and any
 * malformed request is answered with an Error frame rather than a
 * dropped connection, so one bad client cannot wedge a worker.
 *
 * The full protocol grammar — frame layout, per-message payloads and
 * the slab wire format — is documented in docs/sharding.md.
 */
#ifndef DITTO_SHARD_PROTOCOL_H
#define DITTO_SHARD_PROTOCOL_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "serve/request.h"

namespace ditto {
namespace shard {

/** Frame types. Requests are low values; replies add 100. */
enum class Msg : uint32_t
{
    Ping = 1,       //!< liveness probe, empty payload
    Submit = 2,     //!< DenoiseRequest -> remote ticket
    Poll = 3,       //!< ticket -> (ready? + DenoiseResult)
    Cancel = 4,     //!< ticket -> ok flag
    QueryState = 5, //!< ticket -> RequestStatus
    MigrateOut = 6, //!< ticket -> portable request + slab blob
    MigrateIn = 7,  //!< portable request + slab blob -> remote ticket
    Metrics = 8,    //!< -> metrics JSON string
    Drain = 9,      //!< finish accepted work, then reply and stop
    Info = 10,      //!< -> model identity + slab geometry

    PingOk = 101,
    SubmitOk = 102,
    PollRe = 103,
    CancelRe = 104,
    StateRe = 105,
    MigrateOutRe = 106,
    MigrateInRe = 107,
    MetricsRe = 108,
    DrainRe = 109,
    InfoRe = 110,

    /** Reply to any malformed/unserviceable request; payload: str why. */
    Error = 0xEEEE,
};

/**
 * A worker's served-model identity and slab geometry, exchanged at
 * connect time and revalidated on every MigrateIn: a slab may only
 * move between workers whose (spec hash, calibration digest) match —
 * the same invalidation identity the reuse cache keys on.
 */
struct WorkerInfo
{
    uint64_t specHash = 0;
    uint64_t calibDigest = 0;
    int32_t defaultSteps = 0;
    int32_t stateInSlots = 0;
    int32_t stateOutSlots = 0;
};

/**
 * A migrated request on the wire: the source model's identity, the
 * portable effective request (deadline already re-expressed as a
 * remaining budget), and the encoded slab (src/shard/slab_codec.h).
 */
struct MigratedWire
{
    uint64_t specHash = 0;
    uint64_t calibDigest = 0;
    DenoiseRequest req;
    std::vector<uint8_t> slab;
};

// Payload section codecs. Encoders append to the writer; decoders
// return false on malformed/truncated input (reader failure latches).
void putRequest(ByteWriter &w, const DenoiseRequest &req);
bool getRequest(ByteReader &r, DenoiseRequest *out);

void putResult(ByteWriter &w, const DenoiseResult &res);
bool getResult(ByteReader &r, DenoiseResult *out);

void putInfo(ByteWriter &w, const WorkerInfo &info);
bool getInfo(ByteReader &r, WorkerInfo *out);

void putMigratedWire(ByteWriter &w, const MigratedWire &m);
bool getMigratedWire(ByteReader &r, MigratedWire *out);

} // namespace shard
} // namespace ditto

#endif // DITTO_SHARD_PROTOCOL_H
