/**
 * @file
 * ShardWorker: one replica of the serving stack behind a socket.
 *
 * A worker owns a DenoiseServer over one CompiledModel and serves the
 * shard RPC protocol (src/shard/protocol.h) on a Unix-domain socket:
 * submit/poll/cancel/query, migrate-out/migrate-in of relocatable
 * request state, a metrics export, and drain. The front-door router
 * (src/shard/router.h) treats a set of workers as one serving tier;
 * `examples/shard_worker.cpp` wraps this class as a standalone
 * process.
 *
 * Design points:
 *  - Thread-per-connection, sequential frames per connection. The
 *    DenoiseServer underneath is already fully thread-safe, so
 *    handlers call straight into it; the worker only guards its own
 *    connection list and live-ticket set.
 *  - The live-ticket set exists because DenoiseServer::poll fails
 *    loudly (DITTO_FATAL) on unknown/consumed tickets — correct for
 *    in-process misuse, wrong for untrusted bytes. The worker screens
 *    every wire ticket against the set and answers Error frames for
 *    unknown ones, so no remote peer can abort a worker.
 *  - MigrateIn validates the slab *before* install: model identity
 *    (spec hash + calibration digest), slot geometry
 *    (CompiledModel::numStateInSlots/OutSlots), image element count
 *    and step bounds. A mismatched or corrupt slab is answered with
 *    an Error frame — never mis-installed.
 */
#ifndef DITTO_SHARD_WORKER_H
#define DITTO_SHARD_WORKER_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/net.h"
#include "serve/server.h"
#include "shard/protocol.h"

namespace ditto {
namespace shard {

/**
 * Directory for shard sockets (DITTO_SHARD_SOCKET_DIR, default
 * $TMPDIR or /tmp). Kept short: AF_UNIX paths cap at ~107 bytes.
 */
std::string defaultSocketDir();

/** One serving replica: DenoiseServer + protocol endpoint. */
class ShardWorker
{
  public:
    /**
     * The model must outlive the worker. Workers behind one router
     * must serve the same compiled model (identity is checked at
     * addWorker and on every MigrateIn).
     */
    ShardWorker(const CompiledModel &model, std::string socketPath,
                ServerConfig cfg = ServerConfig::fromEnv(),
                std::shared_ptr<ReuseCache> cache = nullptr);

    /** stop()s; in-flight work is finished by the server destructor. */
    ~ShardWorker();

    ShardWorker(const ShardWorker &) = delete;
    ShardWorker &operator=(const ShardWorker &) = delete;

    /** Bind the socket and start accepting. False (with why) on error. */
    bool start(std::string *why = nullptr);

    /**
     * Stop accepting and close every connection, then join the
     * connection threads. Does NOT drain the server — an abrupt stop
     * models a dying worker (the router's failover path); a graceful
     * exit drains first (Drain RPC or server().shutdown()).
     */
    void stop();

    /** True once a Drain RPC has completed the server's shutdown. */
    bool drained() const { return drained_.load(); }

    const std::string &socketPath() const { return socketPath_; }
    const WorkerInfo &info() const { return info_; }
    DenoiseServer &server() { return server_; }

  private:
    void acceptLoop();
    void serveConnection(int fd);

    /** Handle one frame; false closes the connection (drain/EOF). */
    bool handleFrame(int fd, const net::Frame &frame);

    bool sendError(int fd, const std::string &why);

    const CompiledModel &model_;
    const std::string socketPath_;
    WorkerInfo info_;
    DenoiseServer server_;
    net::UnixListener listener_;
    std::thread acceptThread_;

    std::mutex mu_; //!< guards conns_, connFds_, live_
    std::vector<std::thread> conns_;
    std::vector<int> connFds_;

    /**
     * Tickets issued over the wire whose results have not yet been
     * delivered — the screen that keeps hostile ticket ids away from
     * the server's fail-loudly accessors.
     */
    std::unordered_set<uint64_t> live_;

    std::atomic<bool> stopping_{false};
    std::atomic<bool> drained_{false};
};

} // namespace shard
} // namespace ditto

#endif // DITTO_SHARD_WORKER_H
