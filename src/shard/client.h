/**
 * @file
 * ShardClient: one blocking connection to a ShardWorker.
 *
 * Thin RPC stubs over the frame protocol (src/shard/protocol.h), one
 * request frame in, one reply frame out, serialized by a mutex. The
 * error model is two-level and the router's failover logic depends on
 * the distinction:
 *
 *  - Transport failure (connect refused, EOF mid-RPC — e.g. the worker
 *    was killed): the RPC returns false and the client latches
 *    !connected(). The router treats this as a dead worker and
 *    cold-resubmits its outstanding routes.
 *  - Protocol-level refusal (Error frame: unknown ticket, migration
 *    declined, drained): the RPC reports failure but connected() stays
 *    true and lastError() carries the worker's reason. The worker is
 *    healthy; only this operation didn't apply.
 */
#ifndef DITTO_SHARD_CLIENT_H
#define DITTO_SHARD_CLIENT_H

#include <cstdint>
#include <mutex>
#include <string>

#include "common/net.h"
#include "shard/protocol.h"

namespace ditto {
namespace shard {

/** Blocking client for one worker socket. Thread-safe. */
class ShardClient
{
  public:
    ShardClient() = default;
    ~ShardClient() { disconnect(); }

    ShardClient(const ShardClient &) = delete;
    ShardClient &operator=(const ShardClient &) = delete;

    /**
     * Connect (retrying up to DITTO_SHARD_CONNECT_TIMEOUT_MS for the
     * worker-startup race) and fetch the worker's Info. False with why
     * on failure.
     */
    bool connect(const std::string &socketPath, std::string *why = nullptr);

    void disconnect();

    bool connected() const { return fd_ >= 0; }
    const WorkerInfo &info() const { return info_; }
    const std::string &socketPath() const { return socketPath_; }

    /** Worker-side reason of the last Error-frame refusal. */
    const std::string &lastError() const { return lastError_; }

    /** Liveness probe. */
    bool ping();

    /** Submit; false on failure, else *id is the worker-side ticket. */
    bool submit(const DenoiseRequest &req, uint64_t *id);

    /**
     * Non-blocking poll. True with *ready=false when the request is
     * still in flight; true with *ready=true and *out filled when the
     * result arrived (at most once per ticket). False on failure.
     */
    bool poll(uint64_t id, bool *ready, DenoiseResult *out);

    /** Cancel; *ok reports whether the worker accepted it. */
    bool cancel(uint64_t id, bool *ok);

    /** Lifecycle state of a live worker-side ticket. */
    bool queryState(uint64_t id, RequestStatus *out);

    /**
     * Take ticket `id` off the worker as a portable MigratedWire.
     * False with connected() intact means the worker declined (the
     * request finished first or is unknown) and still owns the ticket
     * unless it finished.
     */
    bool migrateOut(uint64_t id, MigratedWire *out);

    /** Hand a MigratedWire to this worker; *id is its new ticket. */
    bool migrateIn(const MigratedWire &m, uint64_t *id);

    /** The worker's metrics JSON export. */
    bool metricsJson(std::string *out);

    /**
     * Ask the worker to finish all accepted work and stop accepting.
     * Blocks until the drain completes.
     */
    bool drain();

  private:
    /**
     * One RPC round trip. False on transport failure (disconnects) or
     * Error frame (connection kept; lastError_ set); true only when
     * the reply type matches `expect`.
     */
    bool rpc(Msg type, const std::vector<uint8_t> &payload, Msg expect,
             net::Frame *reply);

    mutable std::mutex mu_;
    int fd_ = -1;
    std::string socketPath_;
    std::string lastError_;
    WorkerInfo info_;
};

} // namespace shard
} // namespace ditto

#endif // DITTO_SHARD_CLIENT_H
