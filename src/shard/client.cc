/**
 * @file
 * ShardClient implementation (error model in client.h).
 */
#include "shard/client.h"

#include "common/env.h"

namespace ditto {
namespace shard {

bool
ShardClient::connect(const std::string &socketPath, std::string *why)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (fd_ >= 0) {
        net::closeFd(fd_);
        fd_ = -1;
    }
    const int64_t timeoutMs = env::readInt64("DITTO_SHARD_CONNECT_TIMEOUT_MS",
                                             5000, 0, 600'000);
    std::string connectWhy;
    fd_ = net::connectUnix(socketPath, timeoutMs, &connectWhy);
    if (fd_ < 0) {
        if (why)
            *why = "connect " + socketPath + ": " + connectWhy;
        return false;
    }
    socketPath_ = socketPath;

    // Handshake: learn the worker's model identity + slab geometry.
    if (!net::sendFrame(fd_, static_cast<uint32_t>(Msg::Info), {})) {
        net::closeFd(fd_);
        fd_ = -1;
        if (why)
            *why = "info handshake send failed";
        return false;
    }
    net::Frame reply;
    if (!net::recvFrame(fd_, &reply) ||
        reply.type != static_cast<uint32_t>(Msg::InfoRe)) {
        net::closeFd(fd_);
        fd_ = -1;
        if (why)
            *why = "info handshake reply failed";
        return false;
    }
    ByteReader r(reply.payload.data(), reply.payload.size());
    if (!getInfo(r, &info_)) {
        net::closeFd(fd_);
        fd_ = -1;
        if (why)
            *why = "malformed worker info";
        return false;
    }
    return true;
}

void
ShardClient::disconnect()
{
    std::lock_guard<std::mutex> lk(mu_);
    if (fd_ >= 0) {
        net::closeFd(fd_);
        fd_ = -1;
    }
}

bool
ShardClient::rpc(Msg type, const std::vector<uint8_t> &payload, Msg expect,
                 net::Frame *reply)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (fd_ < 0)
        return false;
    if (!net::sendFrame(fd_, static_cast<uint32_t>(type), payload) ||
        !net::recvFrame(fd_, reply)) {
        // Transport failure: the worker is gone (or the stream is
        // desynchronized, which is indistinguishable) — drop the
        // connection so the router's failure detector fires.
        net::closeFd(fd_);
        fd_ = -1;
        return false;
    }
    if (reply->type == static_cast<uint32_t>(Msg::Error)) {
        ByteReader r(reply->payload.data(), reply->payload.size());
        lastError_.clear();
        r.str(&lastError_);
        return false;
    }
    return reply->type == static_cast<uint32_t>(expect);
}

bool
ShardClient::ping()
{
    net::Frame reply;
    return rpc(Msg::Ping, {}, Msg::PingOk, &reply);
}

bool
ShardClient::submit(const DenoiseRequest &req, uint64_t *id)
{
    ByteWriter w;
    putRequest(w, req);
    net::Frame reply;
    if (!rpc(Msg::Submit, w.take(), Msg::SubmitOk, &reply))
        return false;
    ByteReader r(reply.payload.data(), reply.payload.size());
    return r.u64(id);
}

bool
ShardClient::poll(uint64_t id, bool *ready, DenoiseResult *out)
{
    ByteWriter w;
    w.u64(id);
    net::Frame reply;
    if (!rpc(Msg::Poll, w.take(), Msg::PollRe, &reply))
        return false;
    ByteReader r(reply.payload.data(), reply.payload.size());
    uint8_t flag = 0;
    if (!r.u8(&flag))
        return false;
    *ready = flag != 0;
    if (!*ready)
        return true;
    return getResult(r, out);
}

bool
ShardClient::cancel(uint64_t id, bool *ok)
{
    ByteWriter w;
    w.u64(id);
    net::Frame reply;
    if (!rpc(Msg::Cancel, w.take(), Msg::CancelRe, &reply))
        return false;
    ByteReader r(reply.payload.data(), reply.payload.size());
    uint8_t flag = 0;
    if (!r.u8(&flag))
        return false;
    *ok = flag != 0;
    return true;
}

bool
ShardClient::queryState(uint64_t id, RequestStatus *out)
{
    ByteWriter w;
    w.u64(id);
    net::Frame reply;
    if (!rpc(Msg::QueryState, w.take(), Msg::StateRe, &reply))
        return false;
    ByteReader r(reply.payload.data(), reply.payload.size());
    uint8_t state = 0;
    if (!r.u8(&state) ||
        state > static_cast<uint8_t>(RequestStatus::Migrated))
        return false;
    *out = static_cast<RequestStatus>(state);
    return true;
}

bool
ShardClient::migrateOut(uint64_t id, MigratedWire *out)
{
    ByteWriter w;
    w.u64(id);
    net::Frame reply;
    if (!rpc(Msg::MigrateOut, w.take(), Msg::MigrateOutRe, &reply))
        return false;
    ByteReader r(reply.payload.data(), reply.payload.size());
    return getMigratedWire(r, out);
}

bool
ShardClient::migrateIn(const MigratedWire &m, uint64_t *id)
{
    ByteWriter w;
    putMigratedWire(w, m);
    net::Frame reply;
    if (!rpc(Msg::MigrateIn, w.take(), Msg::MigrateInRe, &reply))
        return false;
    ByteReader r(reply.payload.data(), reply.payload.size());
    return r.u64(id);
}

bool
ShardClient::metricsJson(std::string *out)
{
    net::Frame reply;
    if (!rpc(Msg::Metrics, {}, Msg::MetricsRe, &reply))
        return false;
    ByteReader r(reply.payload.data(), reply.payload.size());
    return r.str(out, 1u << 24);
}

bool
ShardClient::drain()
{
    net::Frame reply;
    return rpc(Msg::Drain, {}, Msg::DrainRe, &reply);
}

} // namespace shard
} // namespace ditto
