/**
 * @file
 * ShardWorker implementation (design notes in worker.h).
 */
#include "shard/worker.h"

#include <sys/socket.h>

#include <utility>

#include "common/env.h"
#include "common/logging.h"
#include "shard/slab_codec.h"

namespace ditto {
namespace shard {

std::string
defaultSocketDir()
{
    return env::readString("DITTO_SHARD_SOCKET_DIR", "/tmp");
}

ShardWorker::ShardWorker(const CompiledModel &model, std::string socketPath,
                         ServerConfig cfg, std::shared_ptr<ReuseCache> cache)
    : model_(model), socketPath_(std::move(socketPath)),
      server_(model, cfg, std::move(cache))
{
    info_.specHash = model.spec().hash();
    info_.calibDigest = model.calibrationDigest();
    info_.defaultSteps = model.defaultSteps();
    info_.stateInSlots = model.numStateInSlots();
    info_.stateOutSlots = model.numStateOutSlots();
}

ShardWorker::~ShardWorker()
{
    stop();
}

bool
ShardWorker::start(std::string *why)
{
    if (!listener_.listen(socketPath_, why))
        return false;
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
ShardWorker::stop()
{
    if (stopping_.exchange(true))
        return;
    listener_.close();
    if (acceptThread_.joinable())
        acceptThread_.join();

    std::vector<std::thread> conns;
    {
        std::lock_guard<std::mutex> lk(mu_);
        // Unblock every connection thread's recv; each thread owns
        // (and closes) its fd on the way out.
        for (int fd : connFds_)
            ::shutdown(fd, SHUT_RDWR);
        conns = std::move(conns_);
        conns_.clear();
    }
    for (auto &t : conns)
        if (t.joinable())
            t.join();
}

void
ShardWorker::acceptLoop()
{
    while (!stopping_.load()) {
        const int fd = listener_.accept();
        if (fd < 0)
            return; // listener closed
        std::lock_guard<std::mutex> lk(mu_);
        if (stopping_.load()) {
            net::closeFd(fd);
            return;
        }
        connFds_.push_back(fd);
        conns_.emplace_back([this, fd] { serveConnection(fd); });
    }
}

void
ShardWorker::serveConnection(int fd)
{
    net::Frame frame;
    while (!stopping_.load() && net::recvFrame(fd, &frame)) {
        if (!handleFrame(fd, frame))
            break;
    }
    net::closeFd(fd);
    std::lock_guard<std::mutex> lk(mu_);
    for (auto it = connFds_.begin(); it != connFds_.end(); ++it) {
        if (*it == fd) {
            connFds_.erase(it);
            break;
        }
    }
}

bool
ShardWorker::sendError(int fd, const std::string &why)
{
    ByteWriter w;
    w.str(why);
    return net::sendFrame(fd, static_cast<uint32_t>(Msg::Error), w.take());
}

bool
ShardWorker::handleFrame(int fd, const net::Frame &frame)
{
    ByteReader r(frame.payload.data(), frame.payload.size());
    const auto msg = static_cast<Msg>(frame.type);
    switch (msg) {
      case Msg::Ping:
        return net::sendFrame(fd, static_cast<uint32_t>(Msg::PingOk), {});

      case Msg::Info: {
        ByteWriter w;
        putInfo(w, info_);
        return net::sendFrame(fd, static_cast<uint32_t>(Msg::InfoRe),
                              w.take());
      }

      case Msg::Submit: {
        DenoiseRequest req;
        if (!getRequest(r, &req) || r.remaining() != 0)
            return sendError(fd, "malformed submit");
        if (drained_.load())
            return sendError(fd, "worker drained");
        uint64_t id = 0;
        {
            std::lock_guard<std::mutex> lk(mu_);
            id = server_.submit(req);
            live_.insert(id);
        }
        ByteWriter w;
        w.u64(id);
        return net::sendFrame(fd, static_cast<uint32_t>(Msg::SubmitOk),
                              w.take());
      }

      case Msg::Poll: {
        uint64_t id = 0;
        if (!r.u64(&id) || r.remaining() != 0)
            return sendError(fd, "malformed poll");
        ByteWriter w;
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (!live_.count(id))
                return sendError(fd, "unknown ticket");
            DenoiseResult res;
            if (server_.poll(id, &res)) {
                live_.erase(id);
                w.u8(1);
                putResult(w, res);
            } else {
                w.u8(0);
            }
        }
        return net::sendFrame(fd, static_cast<uint32_t>(Msg::PollRe),
                              w.take());
      }

      case Msg::Cancel: {
        uint64_t id = 0;
        if (!r.u64(&id) || r.remaining() != 0)
            return sendError(fd, "malformed cancel");
        bool ok = false;
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (!live_.count(id))
                return sendError(fd, "unknown ticket");
            ok = server_.cancel(id);
        }
        ByteWriter w;
        w.u8(ok ? 1 : 0);
        return net::sendFrame(fd, static_cast<uint32_t>(Msg::CancelRe),
                              w.take());
      }

      case Msg::QueryState: {
        uint64_t id = 0;
        if (!r.u64(&id) || r.remaining() != 0)
            return sendError(fd, "malformed query");
        uint8_t state = 0;
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (!live_.count(id))
                return sendError(fd, "unknown ticket");
            state = static_cast<uint8_t>(server_.queryState(id));
        }
        ByteWriter w;
        w.u8(state);
        return net::sendFrame(fd, static_cast<uint32_t>(Msg::StateRe),
                              w.take());
      }

      case Msg::MigrateOut: {
        uint64_t id = 0;
        if (!r.u64(&id) || r.remaining() != 0)
            return sendError(fd, "malformed migrate-out");
        MigratedWire wire;
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (!live_.count(id))
                return sendError(fd, "unknown ticket");
            DenoiseServer::MigratedRequest m;
            if (!server_.exportForMigration(id, &m))
                return sendError(fd, "migration declined");
            // Consume the local Migrated sentinel result so the
            // ticket's record is released on this side.
            DenoiseResult sink;
            DITTO_ASSERT(server_.poll(id, &sink),
                         "migrated ticket must be terminal");
            live_.erase(id);
            wire.specHash = info_.specHash;
            wire.calibDigest = info_.calibDigest;
            wire.req = m.req;
            wire.slab = encodeParked(m.state);
        }
        ByteWriter w;
        putMigratedWire(w, wire);
        return net::sendFrame(fd, static_cast<uint32_t>(Msg::MigrateOutRe),
                              w.take());
      }

      case Msg::MigrateIn: {
        MigratedWire wire;
        if (!getMigratedWire(r, &wire) || r.remaining() != 0)
            return sendError(fd, "malformed migrate-in");
        if (drained_.load())
            return sendError(fd, "worker drained");
        if (wire.specHash != info_.specHash ||
            wire.calibDigest != info_.calibDigest)
            return sendError(fd, "model identity mismatch");
        DenoiseServer::MigratedRequest m;
        m.req = wire.req;
        std::string why;
        if (!decodeParked(wire.slab, &m.state, &why))
            return sendError(fd, why);
        // Geometry screen — everything installSlab would assert on
        // must be rejected here, at the wire.
        if (m.state.hasState) {
            if (static_cast<int32_t>(m.state.state.prevIn.size()) !=
                    info_.stateInSlots ||
                static_cast<int32_t>(m.state.state.prevOut.size()) !=
                    info_.stateOutSlots)
                return sendError(fd, "slab slot geometry mismatch");
        }
        if (m.state.image.numel() > 0 &&
            !(m.state.image.shape() == model_.inputShape()))
            return sendError(fd, "slab image shape mismatch");
        if (m.state.stepsDone > 0 && m.state.image.numel() == 0)
            return sendError(fd, "slab missing partial image");
        uint64_t id = 0;
        {
            std::lock_guard<std::mutex> lk(mu_);
            id = server_.importMigrated(m);
            live_.insert(id);
        }
        ByteWriter w;
        w.u64(id);
        return net::sendFrame(fd, static_cast<uint32_t>(Msg::MigrateInRe),
                              w.take());
      }

      case Msg::Metrics: {
        ByteWriter w;
        w.str(server_.metricsJson());
        return net::sendFrame(fd, static_cast<uint32_t>(Msg::MetricsRe),
                              w.take());
      }

      case Msg::Drain: {
        // Finish everything accepted, then confirm. Results stay
        // retrievable (Poll keeps working); Submit/MigrateIn are
        // refused from here on.
        drained_.store(true);
        server_.shutdown();
        return net::sendFrame(fd, static_cast<uint32_t>(Msg::DrainRe), {});
      }

      default:
        return sendError(fd, "unknown message type");
    }
}

} // namespace shard
} // namespace ditto
