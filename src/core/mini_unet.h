/**
 * @file
 * A small but complete functional denoising model.
 *
 * MiniUnet is a numerically-executable UNet slice containing every layer
 * species the Ditto algorithm must handle: convolutions, a residual
 * block with GroupNorm/SiLU, single-head self attention (dynamic QK and
 * PV), cross attention against a constant context (K'/V' as weights),
 * and fully-connected projections. It runs a multi-step reverse
 * diffusion in three modes:
 *
 *  - Fp32: floating-point reference,
 *  - QuantDirect: A8W8 execution with static per-tensor scales
 *    (offline calibration, Q-Diffusion style),
 *  - QuantDitto: the same quantized network executed with temporal
 *    difference processing for every linear layer.
 *
 * QuantDitto is bit-exact against QuantDirect — the reproduction's
 * stand-in for Table II's "accuracy preserved" claim — and both are
 * compared against Fp32 via SQNR.
 */
#ifndef DITTO_CORE_MINI_UNET_H
#define DITTO_CORE_MINI_UNET_H

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/attention_diff.h"
#include "core/diff_linear.h"
#include "quant/quantizer.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace ditto {

/** MiniUnet configuration. */
struct MiniUnetConfig
{
    int64_t channels = 8;    //!< working channel width
    int64_t resolution = 8;  //!< spatial extent
    int64_t inChannels = 3;  //!< input/output channels
    int64_t ctxTokens = 4;   //!< cross-attention context length
    int64_t ctxDim = 8;      //!< cross-attention context width
    int steps = 6;           //!< reverse-diffusion steps
    uint64_t seed = 42;      //!< weight/init RNG seed
};

/** Execution mode of a MiniUnet rollout. */
enum class RunMode
{
    Fp32,
    QuantDirect,
    QuantDitto,
};

/** Result of a full reverse-diffusion rollout. */
struct RolloutResult
{
    FloatTensor finalImage;
    /** Multiplier-lane tallies accumulated over all Ditto diff steps. */
    OpCounts dittoOps;
    /** MACs executed per step (for relative-BOPs reporting). */
    int64_t totalMacsPerStep = 0;
};

/**
 * Functional denoising model with FP32, quantized and Ditto execution.
 */
class MiniUnet
{
  public:
    explicit MiniUnet(MiniUnetConfig cfg);

    const MiniUnetConfig &config() const { return cfg_; }

    /**
     * Run the full reverse diffusion from a seeded noise tensor.
     * Identical seeds produce identical trajectories across modes up to
     * the mode's arithmetic.
     */
    RolloutResult rollout(RunMode mode) const;

    /**
     * One denoising-model evaluation (predicted noise).
     *
     * @param state Ditto per-layer state threaded across steps; pass the
     *        same object for consecutive steps. Required (and used) only
     *        for RunMode::QuantDitto.
     */
    struct DittoState;
    FloatTensor forward(const FloatTensor &x, RunMode mode,
                        DittoState *state, OpCounts *counts) const;

    /** Per-layer state for difference processing across steps. */
    struct DittoState
    {
        std::vector<Int8Tensor> prevIn;   //!< previous input codes
        std::vector<Int32Tensor> prevOut; //!< previous int32 outputs
        bool primed = false;
    };

  private:
    MiniUnetConfig cfg_;

    // FP32 weights.
    FloatTensor wConvIn_, wRes1_, wRes2_;
    FloatTensor wAttnQ_, wAttnK_, wAttnV_, wAttnProj_;
    FloatTensor wCrossQ_, wCrossK_, wCrossV_, wCrossOut_;
    FloatTensor wConvOut_;
    FloatTensor context_;

    // Quantized weights and scales.
    struct QuantWeight
    {
        Int8Tensor codes;
        float scale = 1.0f;
    };
    QuantWeight qConvIn_, qRes1_, qRes2_;
    QuantWeight qAttnQ_, qAttnK_, qAttnV_, qAttnProj_;
    QuantWeight qCrossQ_, qCrossOut_, qConvOut_;
    QuantWeight qCrossKConst_, qCrossVConst_; //!< projected context

    // Persistent difference engines (weight-stationary layers), built
    // once at construction instead of per forward step. optional<> only
    // because the engines are constructed after quantization.
    std::optional<DiffConvEngine> eConvIn_, eRes1_, eRes2_;
    std::optional<DiffConvEngine> eAttnQ_, eAttnK_, eAttnV_, eAttnProj_;
    std::optional<DiffConvEngine> eConvOut_;
    std::optional<DiffFcEngine> eCrossQ_, eCrossOut_;
    std::optional<CrossAttentionEngine> eCrossQk_;
    std::optional<DiffFcEngine> eCrossPv_; //!< V'^T as the weight

    /** Static activation scales per quantization point. */
    std::vector<float> actScale_;

    /** Calibration hook observing quantization points (FP32 pass). */
    mutable std::function<void(int, const FloatTensor &)> observer_;

    FloatTensor noiseInit_;

    void calibrateActScales();
    FloatTensor forwardFp32(const FloatTensor &x) const;
    FloatTensor forwardQuant(const FloatTensor &x, bool use_ditto,
                             DittoState *state, OpCounts *counts) const;
};

} // namespace ditto

#endif // DITTO_CORE_MINI_UNET_H
