/**
 * @file
 * MiniUnet: the historic small denoising model, now a preset spec plus
 * a thin compatibility wrapper over the graph runtime.
 *
 * The model itself lives in runtime/presets.h (miniUnetSpec) and runs
 * through runtime/compiled.h like every other spec; this wrapper keeps
 * the historic constructor-and-rollout surface for existing callers
 * and hands its CompiledModel to the serving layer via compiled().
 * Compiled execution is bitwise identical to the retained hand-wired
 * implementation (core/legacy_unet.h) in every mode, batch size and
 * thread count — the golden parity suite in tests/test_runtime.cc is
 * the proof.
 */
#ifndef DITTO_CORE_MINI_UNET_H
#define DITTO_CORE_MINI_UNET_H

#include <cstdint>
#include <span>
#include <vector>

#include "core/run_mode.h"
#include "runtime/compiled.h"
#include "runtime/presets.h"

namespace ditto {

/** The MiniUnet preset, compiled (see the file comment). */
class MiniUnet
{
  public:
    using DittoState = CompiledModel::DittoState;
    using BatchDittoState = CompiledModel::BatchDittoState;

    explicit MiniUnet(MiniUnetConfig cfg)
        : cfg_(cfg), model_(compile(miniUnetSpec(cfg)))
    {}

    const MiniUnetConfig &config() const { return cfg_; }

    /** The compiled program (the serving layer's model interface). */
    const CompiledModel &compiled() const { return model_; }

    /** Full reverse diffusion from the model's own seeded noise. */
    RolloutResult
    rollout(RunMode mode) const
    {
        return model_.rollout(mode);
    }

    /** Reverse diffusion from caller noise; steps 0 = configured. */
    RolloutResult
    rollout(RunMode mode, const FloatTensor &noise, int steps = 0) const
    {
        return model_.rollout(mode, noise, steps);
    }

    /** Deterministic per-request initial noise. */
    FloatTensor
    requestNoise(uint64_t seed) const
    {
        return model_.requestNoise(seed);
    }

    /** One denoising-model evaluation (predicted noise). */
    FloatTensor
    forward(const FloatTensor &x, RunMode mode, DittoState *state,
            OpCounts *counts) const
    {
        return model_.forward(x, mode, state, counts);
    }

    /** One evaluation for a stacked batch of requests. */
    FloatTensor
    forwardBatch(const FloatTensor &x, RunMode mode,
                 BatchDittoState *state, OpCounts *counts) const
    {
        return model_.forwardBatch(x, mode, state, counts);
    }

    /** N full reverse diffusions as one batch. */
    std::vector<RolloutResult>
    rolloutBatch(RunMode mode, std::span<const FloatTensor> noises) const
    {
        return model_.rolloutBatch(mode, noises);
    }

  private:
    MiniUnetConfig cfg_;
    CompiledModel model_;
};

} // namespace ditto

#endif // DITTO_CORE_MINI_UNET_H
