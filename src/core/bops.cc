/**
 * @file
 * BOPs and lane-occupancy accounting.
 */
#include "core/bops.h"

#include "common/logging.h"

namespace ditto {

const char *
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::Act: return "act";
      case ExecMode::TemporalDiff: return "temporal";
      case ExecMode::SpatialDiff: return "spatial";
    }
    DITTO_PANIC("unknown ExecMode");
}

namespace {

/** BOPs per MAC given the difference operand's bit-class fractions. */
double
bopsPerMac(const BitFractions &f)
{
    return f.low4 * 32.0 + f.full8 * 64.0;
}

/** Lane slots per MAC on a 4-bit PE array. */
double
slotsPerMac(const BitFractions &f)
{
    return f.low4 * 1.0 + f.full8 * 2.0;
}

/**
 * Dynamic attention runs two sub-operations (Q_t dK^T and dQ K_p^T),
 * each with the layer's nominal MAC count; both difference operands
 * follow the same per-layer statistics.
 */
double
attentionFactor(const Layer &layer)
{
    return isDynamicAttention(layer.kind) ? 2.0 : 1.0;
}

} // namespace

double
layerBops(const Layer &layer, ExecMode mode, const BitFractions &diff)
{
    DITTO_ASSERT(layer.isCompute(), "BOPs of a non-compute layer");
    const double macs = static_cast<double>(layer.macs);
    switch (mode) {
      case ExecMode::Act:
        return macs * 64.0;
      case ExecMode::TemporalDiff:
      case ExecMode::SpatialDiff:
        return attentionFactor(layer) * macs * bopsPerMac(diff);
    }
    DITTO_PANIC("unknown ExecMode");
}

double
layerLaneSlots(const Layer &layer, ExecMode mode, const BitFractions &diff)
{
    DITTO_ASSERT(layer.isCompute(), "lane slots of a non-compute layer");
    const double macs = static_cast<double>(layer.macs);
    switch (mode) {
      case ExecMode::Act:
        // 8-bit activations occupy two 4-bit lanes each.
        return macs * 2.0;
      case ExecMode::TemporalDiff:
      case ExecMode::SpatialDiff:
        return attentionFactor(layer) * macs * slotsPerMac(diff);
    }
    DITTO_PANIC("unknown ExecMode");
}

} // namespace ditto
