/**
 * @file
 * The hand-wired MiniUnet: the graph runtime's parity reference.
 *
 * This is the original manually-routed implementation of the MiniUnet
 * slice — every layer explicitly wired through its
 * DiffConvEngine/DiffFcEngine/CrossAttentionEngine, with its own
 * calibration and batched forward. Since the graph-compiled execution
 * API landed, MiniUnet itself is a thin wrapper over
 * runtime/compiled.h; this implementation is deliberately retained as
 * an *independent* reference (the same role ditto::naive plays for
 * the fast kernels): the golden parity suite in tests/test_runtime.cc
 * asserts the compiled MiniUnet preset reproduces it bit for bit in
 * every mode, batch size and thread count. A layer added to the
 * preset must be added here too; the suite fails loudly on any
 * divergence.
 */
#ifndef DITTO_CORE_LEGACY_UNET_H
#define DITTO_CORE_LEGACY_UNET_H

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "core/attention_diff.h"
#include "core/diff_linear.h"
#include "core/run_mode.h"
#include "quant/quantizer.h"
#include "runtime/presets.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace ditto {

/**
 * Hand-wired functional denoising model with FP32, quantized and
 * Ditto execution (parity reference for the compiled MiniUnet).
 */
class HandWiredMiniUnet
{
  public:
    explicit HandWiredMiniUnet(MiniUnetConfig cfg);

    const MiniUnetConfig &config() const { return cfg_; }

    /**
     * Run the full reverse diffusion from the model's own seeded noise
     * tensor. Identical seeds produce identical trajectories across
     * modes up to the mode's arithmetic.
     */
    RolloutResult rollout(RunMode mode) const;

    /**
     * Run the reverse diffusion from a caller-provided noise.
     * @param steps step count; 0 uses the configured cfg().steps. The
     *        activation scales always come from the configured-count
     *        calibration, exactly as when the serving layer runs a
     *        request for fewer or more steps than the model default.
     */
    RolloutResult rollout(RunMode mode, const FloatTensor &noise,
                          int steps = 0) const;

    /**
     * Deterministic per-request initial noise, shaped like the model's
     * input: the serving layer derives each request's trajectory from
     * its seed alone, so a request's result is a pure function of
     * (model config, seed, steps) — never of batch composition.
     */
    FloatTensor requestNoise(uint64_t seed) const;

    /**
     * One denoising-model evaluation (predicted noise).
     *
     * @param state Ditto per-layer state threaded across steps; pass the
     *        same object for consecutive steps. Required (and used) only
     *        for RunMode::QuantDitto.
     */
    struct DittoState;
    FloatTensor forward(const FloatTensor &x, RunMode mode,
                        DittoState *state, OpCounts *counts) const;

    /** Per-layer state for difference processing across steps. */
    struct DittoState
    {
        std::vector<Int8Tensor> prevIn;   //!< previous input codes
        std::vector<Int32Tensor> prevOut; //!< previous int32 outputs
        bool primed = false;
    };

    /**
     * Per-layer state for a *batch* of concurrent Ditto requests:
     * every DittoState slot holds the requests' tensors stacked along
     * the batch (NCHW) or row (token-matrix) dimension, with one
     * primed flag per batch slab. Slab b of every slot always belongs
     * to the same request; the serving layer keeps the request ->
     * slab mapping and edits the batch with appendSlab/removeSlab when
     * requests join or finish, so requests at different timesteps can
     * share a batch (a freshly joined slab is simply unprimed and runs
     * its first step direct, exactly like a fresh DittoState).
     */
    struct BatchDittoState
    {
        std::vector<Int8Tensor> prevIn;   //!< stacked previous codes
        std::vector<Int32Tensor> prevOut; //!< stacked previous outputs
        std::vector<uint8_t> primed;      //!< one flag per batch slab

        int64_t batch() const
        {
            return static_cast<int64_t>(primed.size());
        }

        /** Append one unprimed slab (a request joining the batch). */
        void appendSlab() { appendSlabs(1); }

        /**
         * Append `count` unprimed slabs in one reallocation of every
         * materialized state tensor (a burst of requests joining).
         */
        void appendSlabs(int64_t count);

        /** Remove slab `i` (a request leaving); later slabs shift down. */
        void removeSlab(int64_t i);

        /**
         * Hand slab `i` to a new request in place: just clears its
         * primed flag. The stale tensor contents are never read (an
         * unprimed slab always runs direct first), so slab reuse is
         * O(1) where remove+append would copy the whole stacked state
         * — the continuous-batching fast path.
         */
        void resetSlab(int64_t i)
        {
            primed[static_cast<size_t>(i)] = 0;
        }
    };

    /**
     * One denoising-model evaluation for a stacked batch of requests:
     * x is [B, inChannels, res, res] and the result stacks each
     * request's predicted noise. Every request's slab is computed with
     * exactly the arithmetic of forward() on its own tensors — batched
     * results are bitwise identical to per-request rollouts at any
     * thread count and batch size.
     *
     * @param state required for RunMode::QuantDitto; its batch() must
     *        equal x's batch dimension.
     * @param counts per-request tallies (array of B, or null).
     */
    FloatTensor forwardBatch(const FloatTensor &x, RunMode mode,
                             BatchDittoState *state,
                             OpCounts *counts) const;

    /**
     * Run N full reverse diffusions as one batch (all cfg().steps steps,
     * one noise tensor per request). Returns per-request results,
     * bitwise identical to rollout(mode, noises[i]) for every i.
     */
    std::vector<RolloutResult>
    rolloutBatch(RunMode mode, std::span<const FloatTensor> noises) const;

  private:
    MiniUnetConfig cfg_;

    // FP32 weights.
    FloatTensor wConvIn_, wRes1_, wRes2_;
    FloatTensor wAttnQ_, wAttnK_, wAttnV_, wAttnProj_;
    FloatTensor wCrossQ_, wCrossK_, wCrossV_, wCrossOut_;
    FloatTensor wConvOut_;
    FloatTensor context_;

    // Quantized weights and scales.
    struct QuantWeight
    {
        Int8Tensor codes;
        float scale = 1.0f;
    };
    QuantWeight qConvIn_, qRes1_, qRes2_;
    QuantWeight qAttnQ_, qAttnK_, qAttnV_, qAttnProj_;
    QuantWeight qCrossQ_, qCrossOut_, qConvOut_;
    QuantWeight qCrossKConst_, qCrossVConst_; //!< projected context

    // Persistent difference engines (weight-stationary layers), built
    // once at construction instead of per forward step. optional<> only
    // because the engines are constructed after quantization.
    std::optional<DiffConvEngine> eConvIn_, eRes1_, eRes2_;
    std::optional<DiffConvEngine> eAttnQ_, eAttnK_, eAttnV_, eAttnProj_;
    std::optional<DiffConvEngine> eConvOut_;
    std::optional<DiffFcEngine> eCrossQ_, eCrossOut_;
    std::optional<CrossAttentionEngine> eCrossQk_;
    std::optional<DiffFcEngine> eCrossPv_; //!< V'^T as the weight

    /** Static activation scales per quantization point. */
    std::vector<float> actScale_;

    /** Calibration hook observing quantization points (FP32 pass). */
    mutable std::function<void(int, const FloatTensor &)> observer_;

    FloatTensor noiseInit_;

    void calibrateActScales();
    FloatTensor forwardFp32(const FloatTensor &x) const;
    FloatTensor forwardQuant(const FloatTensor &x, bool use_ditto,
                             DittoState *state, OpCounts *counts) const;
    FloatTensor forwardQuantBatch(const FloatTensor &x, bool use_ditto,
                                  BatchDittoState *state,
                                  OpCounts *counts) const;
};

} // namespace ditto

#endif // DITTO_CORE_LEGACY_UNET_H
