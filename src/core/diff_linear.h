/**
 * @file
 * Temporal difference processing for weight-stationary linear layers
 * (paper Section IV-A, Fig. 7).
 *
 * Executes a quantized linear layer at time step t as
 *
 *     out_t = out_{t+1} + W (x_t - x_{t+1})
 *
 * using the distributive property (the reverse process runs from high
 * step indices down, so step t+1 is the already-computed predecessor).
 * In the integer domain with a shared scale this is *exact*: the test
 * suite asserts bit-equality against direct execution. The difference
 * operand is narrow — mostly zero or 4-bit — which is where the
 * hardware's zero skipping and reduced-bit-width lanes gain their
 * speedup.
 *
 * Since the sparse diff-GEMM refactor the engines realize that speedup
 * in software too: the difference operand is classified once by the
 * software Encoding Unit (quant/encoder.h) into a panel plan that the
 * plan-driven ops.h entry points execute, skipping zero values and
 * reading 4-bit values from packed nibble panels. The previous dense
 * execution (full int16 GEMM over the difference) is retained under
 * ditto::naive as the reference the sparse path is parity-tested
 * against.
 *
 * The engines also tally how many multiplies fall in each bit class,
 * the quantity the BOPs analysis (Fig. 6) and the cycle model consume;
 * the tallies now fall out of the encoder pass that drives execution,
 * so accounting and execution cannot diverge.
 */
#ifndef DITTO_CORE_DIFF_LINEAR_H
#define DITTO_CORE_DIFF_LINEAR_H

#include <cstdint>

#include "quant/bitwidth.h"
#include "quant/encoder.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace ditto {

/** Multiply counts by operand bit class for one layer execution. */
struct OpCounts
{
    int64_t zeroSkipped = 0; //!< multiplies skipped (zero difference)
    int64_t low4 = 0;        //!< multiplies on the 4-bit lane
    int64_t full8 = 0;       //!< multiplies needing the 8-bit path

    /**
     * Difference-calculation work (paper Section IV-B): elements
     * subtracted against a *stored previous input* at a full-value
     * boundary. Layers whose dependency verdict lets them consume the
     * producer's difference directly never store previous input codes
     * and contribute nothing here — the quantity the graph runtime's
     * skip test asserts on (docs/graph_runtime.md).
     */
    int64_t diffCalcElems = 0;

    /**
     * Summation work: accumulator elements materialized to full values
     * for a consumer that needs them. Skipped when every consumer is a
     * compute layer consuming the difference.
     */
    int64_t summationElems = 0;

    /**
     * Output elements replayed from a cached previous step instead of
     * being computed (RunMode::ApproxDitto block skips — see
     * docs/approx_reuse.md). Always 0 in the exact modes.
     */
    int64_t reusedElems = 0;

    int64_t total() const { return zeroSkipped + low4 + full8; }

    /**
     * Bit operations, counting a 4-bit x 8-bit multiply as 32 BOPs and
     * an 8-bit x 8-bit multiply as 64 (the paper's BOPs metric).
     */
    int64_t bops() const { return low4 * 32 + full8 * 64; }

    void
    merge(const OpCounts &o)
    {
        zeroSkipped += o.zeroSkipped;
        low4 += o.low4;
        full8 += o.full8;
        diffCalcElems += o.diffCalcElems;
        summationElems += o.summationElems;
        reusedElems += o.reusedElems;
    }
};

/**
 * Execution policy for the difference engines (software Defo, paper
 * Section IV-C). Difference execution only pays off when enough of
 * the difference stream is skippable: the engines probe the stream's
 * class counts (one cheap vectorized sweep, which also feeds OpCounts)
 * and compare the predicted sparse cost against the dense direct cost.
 *
 *  - Auto: revert to direct execution when the probe predicts the
 *    diff path is more expensive. Results are bitwise identical either
 *    way (the distributive identity is exact), so reversion changes
 *    wall-clock only; the decision is a pure function of the codes,
 *    never of timers or thread counts.
 *  - ForceDiff: always run the sparse plan path (parity tests,
 *    kernel benchmarks).
 */
enum class DiffPolicy
{
    Auto,
    ForceDiff,
};

/**
 * Software Defo cost model: per-MAC penalty of the sparse diff path
 * relative to the dense blocked GEMM, as a function of the
 * accumulation row width n. Wide rows amortize the per-entry decode
 * and read-modify-write overhead (~1.3x); narrow rows do not (~3x).
 * Predicted sparse cost = nonzero_fraction * penalty * dense cost.
 */
double diffMacPenalty(int64_t n);

/** Tally the bit classes of `values` weighted by `macs_per_element`. */
OpCounts tallyOps(const Int16Tensor &values, int64_t macs_per_element);

/**
 * OpCounts from an encoding plan's element tallies: every element
 * drives `macs_per_element` multiplies of its own bit class. Equals
 * tallyOps of the plan's source operand.
 */
OpCounts planOpCounts(const DiffGemmPlan &plan, int64_t macs_per_element);

/** OpCounts from a class-count probe (same convention). */
OpCounts probeOpCounts(const DiffClassCounts &probe,
                       int64_t macs_per_element);

/**
 * True when the probe predicts the sparse path wins for a single
 * weight-stationary sub-op with an n-wide accumulation row:
 * density * diffMacPenalty(n) < 1.
 */
bool diffWorthIt(const DiffClassCounts &probe, int64_t n);

/**
 * Fully-connected layer with temporal difference processing.
 *
 * Holds the quantized weight; callers drive it step by step.
 */
class DiffFcEngine
{
  public:
    /** @param weight int8 weight matrix [out_features, in_features]. */
    explicit DiffFcEngine(Int8Tensor weight);

    /** Direct (full bit-width) execution: y = x W^T. */
    Int32Tensor runDirect(const Int8Tensor &x) const;

    /**
     * Difference execution: y_t = prev_out + W (x - prev_x).
     *
     * @param x current-step input codes.
     * @param prev_x previous-step input codes.
     * @param prev_out previous-step int32 output.
     * @param counts optional tally of multiplier-lane usage.
     * @param policy Auto reverts to direct execution (bit-identical)
     *        when the class-count probe predicts diff is slower.
     */
    Int32Tensor runDiff(const Int8Tensor &x, const Int8Tensor &prev_x,
                        const Int32Tensor &prev_out,
                        OpCounts *counts = nullptr,
                        DiffPolicy policy = DiffPolicy::Auto) const;

    /**
     * Difference execution with a caller-supplied difference operand:
     * `d` is x - prev_x already subtracted — the graph runtime hands
     * it over when the dependency analysis says the producer's output
     * is already a difference, so this layer stores no previous input
     * codes. Bitwise identical to runDiff on operands whose
     * subtraction equals `d` (same probe, same plan, same decision).
     * `x` is still needed for the direct fallback when the probe
     * reverts.
     */
    Int32Tensor runDiffPre(const Int8Tensor &x, const Int16Tensor &d,
                           const Int32Tensor &prev_out,
                           OpCounts *counts = nullptr,
                           DiffPolicy policy = DiffPolicy::Auto) const;

    /**
     * Batched execution over `slabs` requests stacked along the row
     * dimension: x is [slabs * rows, in]; slab s covers rows
     * [s * rows, (s+1) * rows). Per slab the engine makes exactly the
     * single-request decision — direct when the slab is unprimed
     * (primed[s] == 0) or its probe reverts, sparse diff otherwise —
     * and executes it through batch-folded kernels: contiguous direct
     * runs become one row-folded GEMM, diff slabs one batched plan
     * dispatch. Bitwise identical to per-request runDirect/runDiff at
     * any thread count and batch size.
     *
     * @param prev_x stacked previous codes (may be null when no slab
     *        is primed).
     * @param prev_out stacked previous outputs (same condition).
     * @param primed per-slab flags; unprimed slabs run direct and do
     *        not touch counts.
     * @param counts per-slab tallies (array of `slabs`, or null).
     */
    Int32Tensor runBatch(const Int8Tensor &x, int64_t slabs,
                         const Int8Tensor *prev_x,
                         const Int32Tensor *prev_out,
                         const uint8_t *primed, OpCounts *counts = nullptr,
                         DiffPolicy policy = DiffPolicy::Auto) const;

    /**
     * runBatch with a caller-supplied stacked difference `d` (int16,
     * x's shape): per-slab probes and plans read slab regions of `d`
     * instead of subtracting stored previous codes. Unprimed slabs run
     * direct and never read their `d` region.
     */
    Int32Tensor runBatchPre(const Int8Tensor &x, const Int16Tensor &d,
                            int64_t slabs, const Int32Tensor *prev_out,
                            const uint8_t *primed,
                            OpCounts *counts = nullptr,
                            DiffPolicy policy = DiffPolicy::Auto) const;

    const Int8Tensor &weight() const { return weight_; }

  private:
    Int8Tensor weight_;
    Int8Tensor weightT_; //!< [in, out] copy: plan B operand, no repacking
};

/** 2-D convolution with temporal difference processing. */
class DiffConvEngine
{
  public:
    DiffConvEngine(Int8Tensor weight, Conv2dParams params);

    /** Direct (full bit-width) execution. */
    Int32Tensor runDirect(const Int8Tensor &x) const;

    /**
     * Difference execution: y_t = prev_out + conv(x - prev_x).
     *
     * The raw difference is encoded per batch slab and scattered
     * through the kernel windows (kernels::convDiffScatter); `counts`
     * classifies each input element once, charged the average
     * out_channels * k * k / stride^2 multiplies — the same convention
     * as the dense reference and the BOPs model.
     */
    Int32Tensor runDiff(const Int8Tensor &x, const Int8Tensor &prev_x,
                        const Int32Tensor &prev_out,
                        OpCounts *counts = nullptr,
                        DiffPolicy policy = DiffPolicy::Auto) const;

    /**
     * Difference execution with a caller-supplied NCHW difference
     * (DiffFcEngine::runDiffPre semantics: the dependency analysis
     * bypassed difference calculation, the producer handed `d` over).
     */
    Int32Tensor runDiffPre(const Int8Tensor &x, const Int16Tensor &d,
                           const Int32Tensor &prev_out,
                           OpCounts *counts = nullptr,
                           DiffPolicy policy = DiffPolicy::Auto) const;

    /**
     * Batched execution over the batch dimension of a stacked NCHW
     * input: slab b is x[b]. Per-slab decisions exactly as runDiff
     * makes them for a single-batch tensor; direct runs fold into
     * batched convolutions, diff slabs into one batched scatter
     * dispatch (slab-parallel — including the 1x1 fast path that is
     * serial per slab in runDiff). Bitwise identical to per-request
     * execution at any thread count and batch size.
     */
    Int32Tensor runBatch(const Int8Tensor &x, const Int8Tensor *prev_x,
                         const Int32Tensor *prev_out, const uint8_t *primed,
                         OpCounts *counts = nullptr,
                         DiffPolicy policy = DiffPolicy::Auto) const;

    /** runBatch with a caller-supplied stacked NCHW difference. */
    Int32Tensor runBatchPre(const Int8Tensor &x, const Int16Tensor &d,
                            const Int32Tensor *prev_out,
                            const uint8_t *primed,
                            OpCounts *counts = nullptr,
                            DiffPolicy policy = DiffPolicy::Auto) const;

    const Conv2dParams &params() const { return params_; }

  private:
    Int8Tensor weight_;
    Int8Tensor wmatT_; //!< [Cin*K*K, Cout] copy: scatter tap rows
    Int8Tensor wrevT_; //!< kx-reversed rows for the interior fast path
    Conv2dParams params_;
};

namespace detail {

/**
 * Shared batched weight-stationary execution (DiffFcEngine and
 * CrossAttentionEngine): per-slab probe/decide exactly like the
 * single-request runDiff, then contiguous direct runs as one
 * row-folded GEMM and all diff slabs as one batched plan dispatch.
 * Bitwise identical to per-slab runDirect/runDiff calls.
 */
Int32Tensor runBatchWeightStationary(const Int8Tensor &x, int64_t slabs,
                                     const Int8Tensor *prev_x,
                                     const Int32Tensor *prev_out,
                                     const uint8_t *primed,
                                     OpCounts *counts, DiffPolicy policy,
                                     const Int8Tensor &weight,
                                     const Int8Tensor &weight_t);

/**
 * runBatchWeightStationary with a caller-supplied stacked difference
 * (the diff-calc-bypass counterpart): probes and plans read slab
 * regions of `d`; everything else — per-slab decisions, folded direct
 * runs, one batched plan dispatch — is identical.
 */
Int32Tensor runBatchWeightStationaryPre(const Int8Tensor &x,
                                        const Int16Tensor &d, int64_t slabs,
                                        const Int32Tensor *prev_out,
                                        const uint8_t *primed,
                                        OpCounts *counts, DiffPolicy policy,
                                        const Int8Tensor &weight,
                                        const Int8Tensor &weight_t);

} // namespace detail

namespace naive {

/**
 * Dense difference execution references (the pre-sparse engine bodies):
 * widen the whole difference to int16, run the dense diff GEMM / conv,
 * add the previous output. Used by parity tests and as the
 * sparse-vs-dense baseline in bench_kernels.
 */
Int32Tensor fcRunDiff(const Int8Tensor &x, const Int8Tensor &prev_x,
                      const Int32Tensor &prev_out, const Int8Tensor &weight,
                      OpCounts *counts = nullptr);
Int32Tensor convRunDiff(const Int8Tensor &x, const Int8Tensor &prev_x,
                        const Int32Tensor &prev_out,
                        const Int8Tensor &weight, const Conv2dParams &params,
                        OpCounts *counts = nullptr);

} // namespace naive

} // namespace ditto

#endif // DITTO_CORE_DIFF_LINEAR_H
