/**
 * @file
 * Temporal difference processing for weight-stationary linear layers
 * (paper Section IV-A, Fig. 7).
 *
 * Executes a quantized linear layer at time step t as
 *
 *     out_t = out_{t+1} + W (x_t - x_{t+1})
 *
 * using the distributive property (the reverse process runs from high
 * step indices down, so step t+1 is the already-computed predecessor).
 * In the integer domain with a shared scale this is *exact*: the test
 * suite asserts bit-equality against direct execution. The difference
 * operand is narrow — mostly zero or 4-bit — which is where the
 * hardware's zero skipping and reduced-bit-width lanes gain their
 * speedup.
 *
 * The engines also tally how many multiplies fall in each bit class,
 * the quantity the BOPs analysis (Fig. 6) and the cycle model consume.
 */
#ifndef DITTO_CORE_DIFF_LINEAR_H
#define DITTO_CORE_DIFF_LINEAR_H

#include <cstdint>

#include "quant/bitwidth.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace ditto {

/** Multiply counts by operand bit class for one layer execution. */
struct OpCounts
{
    int64_t zeroSkipped = 0; //!< multiplies skipped (zero difference)
    int64_t low4 = 0;        //!< multiplies on the 4-bit lane
    int64_t full8 = 0;       //!< multiplies needing the 8-bit path

    int64_t total() const { return zeroSkipped + low4 + full8; }

    /**
     * Bit operations, counting a 4-bit x 8-bit multiply as 32 BOPs and
     * an 8-bit x 8-bit multiply as 64 (the paper's BOPs metric).
     */
    int64_t bops() const { return low4 * 32 + full8 * 64; }

    void
    merge(const OpCounts &o)
    {
        zeroSkipped += o.zeroSkipped;
        low4 += o.low4;
        full8 += o.full8;
    }
};

/** Tally the bit classes of `values` weighted by `macs_per_element`. */
OpCounts tallyOps(const Int16Tensor &values, int64_t macs_per_element);

/**
 * Fully-connected layer with temporal difference processing.
 *
 * Holds the quantized weight; callers drive it step by step.
 */
class DiffFcEngine
{
  public:
    /** @param weight int8 weight matrix [out_features, in_features]. */
    explicit DiffFcEngine(Int8Tensor weight);

    /** Direct (full bit-width) execution: y = x W^T. */
    Int32Tensor runDirect(const Int8Tensor &x) const;

    /**
     * Difference execution: y_t = prev_out + W (x - prev_x).
     *
     * @param x current-step input codes.
     * @param prev_x previous-step input codes.
     * @param prev_out previous-step int32 output.
     * @param counts optional tally of multiplier-lane usage.
     */
    Int32Tensor runDiff(const Int8Tensor &x, const Int8Tensor &prev_x,
                        const Int32Tensor &prev_out,
                        OpCounts *counts = nullptr) const;

    const Int8Tensor &weight() const { return weight_; }

  private:
    Int8Tensor weight_;
};

/** 2-D convolution with temporal difference processing. */
class DiffConvEngine
{
  public:
    DiffConvEngine(Int8Tensor weight, Conv2dParams params);

    /** Direct (full bit-width) execution. */
    Int32Tensor runDirect(const Int8Tensor &x) const;

    /** Difference execution: y_t = prev_out + conv(x - prev_x). */
    Int32Tensor runDiff(const Int8Tensor &x, const Int8Tensor &prev_x,
                        const Int32Tensor &prev_out,
                        OpCounts *counts = nullptr) const;

    const Conv2dParams &params() const { return params_; }

  private:
    Int8Tensor weight_;
    Conv2dParams params_;
};

} // namespace ditto

#endif // DITTO_CORE_DIFF_LINEAR_H
