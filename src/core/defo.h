/**
 * @file
 * Ditto execution flow optimization — Defo (paper Section IV-B, Fig. 9).
 *
 * Temporal difference processing turns some layers memory bound (the
 * Encoding Unit must stream the previous step's input, and summation
 * the previous output). Defo fixes this with a two-phase scheme:
 *
 *  - static: dependency analysis (ModelGraph::analyzeDependencies)
 *    places difference calculation and summation only at non-linear
 *    boundaries;
 *  - runtime: the first time step runs every layer with original
 *    activations and records its cycles; the second step runs every
 *    layer with temporal differences and records again; from the third
 *    step on, each layer is locked to the cheaper mode.
 *
 * Variants modelled here:
 *  - Defo+  : layers reverting to "original" execution instead run with
 *    spatial differences (which also lowers the first-step cost and
 *    therefore the reversion threshold);
 *  - Dynamic-Ditto: keeps monitoring difference-mode layers at every
 *    step and may demote them to act mode later (demotion only — the
 *    act-mode cycles of the current step are unknown while running in
 *    difference mode);
 *  - Ideal: an oracle that picks the per-step optimum, the upper bound
 *    of Figs. 18/19.
 */
#ifndef DITTO_CORE_DEFO_H
#define DITTO_CORE_DEFO_H

#include <cstdint>
#include <vector>

#include "core/bops.h"

namespace ditto {

/** Execution-flow policy of an accelerator configuration. */
enum class FlowPolicy
{
    AlwaysAct,    //!< baseline: original activations every step
    AlwaysDiff,   //!< naive temporal differences (no runtime reversion)
    AlwaysSpatial,//!< spatial differences every step (Diffy-style)
    Defo,         //!< Ditto: lock per-layer mode at the second step
    DefoPlus,     //!< Ditto+: act-mode layers use spatial differences
    DynamicDefo,  //!< Dynamic-Ditto: demote diff layers at any step
    Ideal,        //!< oracle per-step optimum
    IdealPlus,    //!< oracle including spatial mode (Ideal-Ditto+)
};

/** Human-readable name of a FlowPolicy. */
const char *flowPolicyName(FlowPolicy policy);

/**
 * Runtime mode controller for one accelerator run.
 *
 * Mirrors the hardware Defo Unit: a per-layer table recording first and
 * second step cycles and the locked decision bit. The simulator drives
 * it layer by layer: chooseMode() before executing, observe() after
 * (with the cycles of the mode used), and observeOracle() when oracle
 * costs are available (Ideal policies and accuracy scoring).
 */
class DefoController
{
  public:
    DefoController(FlowPolicy policy, int num_layers);

    FlowPolicy policy() const { return policy_; }

    /** Mode for compute layer `layer` at step `step`. */
    ExecMode chooseMode(int layer, int step) const;

    /** Record the cycles of the executed mode. */
    void observe(int layer, int step, ExecMode used, double cycles);

    /**
     * Record oracle per-mode costs (used by Ideal policies and by the
     * Fig. 17 accuracy metric).
     */
    void observeOracle(int layer, int step, double act_cycles,
                       double temporal_cycles, double spatial_cycles);

    /** True when the layer is locked to act-style mode (Figs. 17). */
    bool revertedToAct(int layer) const;

    /** First-step (act-mode) cycles recorded for a layer. */
    double actCycles(int layer) const { return table_[layer].actCycles; }

    /** Second-step (diff-mode) cycles recorded for a layer. */
    double diffCycles(int layer) const { return table_[layer].diffCycles; }

  private:
    /** One Defo Unit table entry (16+16+1 bits in hardware). */
    struct Entry
    {
        double actCycles = 0.0;   //!< step-0 cycles (act or spatial mode)
        double diffCycles = 0.0;  //!< step-1 cycles (temporal mode)
        bool useDiff = true;      //!< locked decision for steps >= 2
        bool demoted = false;     //!< Dynamic-Ditto demotion latch
        double diffCycleSum = 0.0; //!< running diff-mode cycle total
        int diffCycleCount = 0;    //!< steps contributing to the sum
        double oracleAct = 0.0;
        double oracleTemporal = 0.0;
        double oracleSpatial = 0.0;
    };

    FlowPolicy policy_;
    std::vector<Entry> table_;

    /** Mode used by "act-style" execution under this policy. */
    ExecMode actStyleMode() const;
};

} // namespace ditto

#endif // DITTO_CORE_DEFO_H
