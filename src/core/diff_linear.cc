/**
 * @file
 * Difference-processing engines for FC and convolution layers.
 */
#include "core/diff_linear.h"

#include "common/logging.h"

namespace ditto {

OpCounts
tallyOps(const Int16Tensor &values, int64_t macs_per_element)
{
    OpCounts c;
    for (int16_t v : values.data()) {
        switch (classifyValue(v)) {
          case BitClass::Zero:
            c.zeroSkipped += macs_per_element;
            break;
          case BitClass::Low4:
            c.low4 += macs_per_element;
            break;
          case BitClass::Full8:
            c.full8 += macs_per_element;
            break;
        }
    }
    return c;
}

DiffFcEngine::DiffFcEngine(Int8Tensor weight) : weight_(std::move(weight))
{
    DITTO_ASSERT(weight_.shape().rank() == 2,
                 "fc weight must be [out, in]");
}

Int32Tensor
DiffFcEngine::runDirect(const Int8Tensor &x) const
{
    return fullyConnectedInt8(x, weight_);
}

Int32Tensor
DiffFcEngine::runDiff(const Int8Tensor &x, const Int8Tensor &prev_x,
                      const Int32Tensor &prev_out, OpCounts *counts) const
{
    DITTO_ASSERT(x.shape() == prev_x.shape(),
                 "fc diff input shape mismatch");
    const Int16Tensor diff = subtractInt8(x, prev_x);
    if (counts) {
        // Every input element feeds out_features multiplies.
        counts->merge(tallyOps(diff, weight_.shape()[0]));
    }
    const Int32Tensor delta = fullyConnectedDiffInt16(diff, weight_);
    return addInt32(prev_out, delta);
}

DiffConvEngine::DiffConvEngine(Int8Tensor weight, Conv2dParams params)
    : weight_(std::move(weight)), params_(params)
{
    DITTO_ASSERT(weight_.shape().rank() == 4,
                 "conv weight must be OIHW");
}

Int32Tensor
DiffConvEngine::runDirect(const Int8Tensor &x) const
{
    return conv2dInt8(x, weight_, params_);
}

Int32Tensor
DiffConvEngine::runDiff(const Int8Tensor &x, const Int8Tensor &prev_x,
                        const Int32Tensor &prev_out,
                        OpCounts *counts) const
{
    DITTO_ASSERT(x.shape() == prev_x.shape(),
                 "conv diff input shape mismatch");
    const Int16Tensor diff = subtractInt8(x, prev_x);
    if (counts) {
        // Each input element is touched by roughly
        // out_channels * k * k / stride^2 multiplies; use the exact
        // average macs / input elements for the tally weight.
        const int64_t per_elem = std::max<int64_t>(
            1, weight_.shape()[0] * weight_.shape()[2] *
                   weight_.shape()[3] /
                   (params_.stride * params_.stride));
        counts->merge(tallyOps(diff, per_elem));
    }
    const Int32Tensor delta = conv2dDiffInt16(diff, weight_, params_);
    return addInt32(prev_out, delta);
}

} // namespace ditto
