/**
 * @file
 * Difference-processing engines for FC and convolution layers.
 *
 * runDiff routes through the sparse plan path: encode once (fused
 * subtract + classify), execute zero-skipping diff GEMM, accumulate
 * into the previous output. The dense execution is retained under
 * naive:: for parity tests and baselines.
 */
#include "core/diff_linear.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/logging.h"
#include "common/rng.h"
#include "quant/encoder.h"
#include "tensor/kernels.h"

namespace ditto {

OpCounts
tallyOps(const Int16Tensor &values, int64_t macs_per_element)
{
    OpCounts c;
    for (int16_t v : values.data()) {
        switch (classifyValue(v)) {
          case BitClass::Zero:
            c.zeroSkipped += macs_per_element;
            break;
          case BitClass::Low4:
            c.low4 += macs_per_element;
            break;
          case BitClass::Full8:
            c.full8 += macs_per_element;
            break;
        }
    }
    return c;
}

OpCounts
planOpCounts(const DiffGemmPlan &plan, int64_t macs_per_element)
{
    OpCounts c;
    c.zeroSkipped = plan.zeroElems * macs_per_element;
    c.low4 = plan.low4Elems * macs_per_element;
    c.full8 = plan.full8Elems * macs_per_element;
    return c;
}

OpCounts
probeOpCounts(const DiffClassCounts &probe, int64_t macs_per_element)
{
    OpCounts c;
    c.zeroSkipped = probe.zero * macs_per_element;
    c.low4 = probe.low4 * macs_per_element;
    c.full8 = probe.full8 * macs_per_element;
    return c;
}

bool
diffWorthIt(const DiffClassCounts &probe, int64_t n)
{
    const double density =
        static_cast<double>(probe.nonzero()) /
        static_cast<double>(std::max<int64_t>(1, probe.total()));
    return density * diffMacPenalty(n) < 1.0;
}

namespace {

/**
 * Per-MAC penalties of the sparse diff path relative to the dense
 * blocked GEMM, for wide (>= 64) and narrow accumulation rows. The
 * historic baked-in constants (1.3 / 3.0) remain the fallback when a
 * host cannot be probed.
 */
struct PenaltyModel
{
    double wide = 1.3;
    double narrow = 3.0;
};

/**
 * Measure the penalty for one accumulation-row width: run the same
 * weight-stationary layer dense and through the sparse plan path on a
 * 50%-dense low-4 difference stream and compare wall-clock. The probe
 * is a few hundred thousand MACs — microseconds on any host.
 */
double
measuredPenalty(int64_t out_features)
{
    using Clock = std::chrono::steady_clock;
    const int64_t m = 48, k = 96;
    const double density = 0.5;
    Rng rng = Rng::fromKeys(0xD1FF'9EAA, static_cast<uint64_t>(out_features));
    Int8Tensor prev(Shape{m, k});
    prev.fillUniformInt(rng, -90, 90);
    Int8Tensor cur = prev;
    for (int64_t i = 0; i < cur.numel(); i += 2)
        cur.at(i) = static_cast<int8_t>(
            std::clamp<int>(cur.at(i) + 3, -127, 127));
    Int8Tensor w(Shape{out_features, k});
    w.fillUniformInt(rng, -90, 90);
    const DiffFcEngine eng(std::move(w));
    const Int32Tensor prev_out = eng.runDirect(prev);

    int64_t sink = 0;
    auto bestOf = [&](auto &&fn) {
        double best = 1e300;
        for (int rep = 0; rep < 7; ++rep) {
            const auto t0 = Clock::now();
            fn();
            const auto t1 = Clock::now();
            best = std::min(
                best, std::chrono::duration<double>(t1 - t0).count());
        }
        return best;
    };
    const double dense_s = bestOf([&] {
        const Int32Tensor r = eng.runDirect(cur);
        sink += r.at(0);
    });
    const double diff_s = bestOf([&] {
        const Int32Tensor r = eng.runDiff(cur, prev, prev_out, nullptr,
                                          DiffPolicy::ForceDiff);
        sink += r.at(0);
    });
    // Keep the side effects alive without polluting the measurement.
    if (sink == 0x7FFF'FFFF'FFFF'FFFF)
        std::fprintf(stderr, "[ditto] penalty probe sink\n");
    if (dense_s <= 0.0 || diff_s <= 0.0)
        return 0.0; // degenerate clock: caller falls back to constants
    return std::clamp(diff_s / (density * dense_s), 1.05, 8.0);
}

/**
 * Resolve the penalty model once per process: the
 * DITTO_DIFF_MAC_PENALTY override ("wide" or "wide,narrow") wins,
 * otherwise the startup micro-probe calibrates both widths on this
 * host. The decision the model feeds (Defo reversion) is bitwise
 * neutral — diff and direct execution produce identical results — so
 * host-dependent penalties change wall-clock only.
 */
const PenaltyModel &
penaltyModel()
{
    static const PenaltyModel model = [] {
        PenaltyModel m;
        const std::string s =
            env::readString("DITTO_DIFF_MAC_PENALTY", "");
        if (!s.empty()) {
            char *end = nullptr;
            const double wide = std::strtod(s.c_str(), &end);
            bool ok = end != s.c_str() && wide >= 1.0;
            double narrow = wide;
            if (ok && *end == ',') {
                const char *rest = end + 1;
                narrow = std::strtod(rest, &end);
                ok = end != rest && *end == '\0' && narrow >= 1.0;
            } else if (ok) {
                ok = *end == '\0';
            }
            if (ok) {
                m.wide = wide;
                m.narrow = narrow;
                std::fprintf(stderr,
                             "[ditto] diff MAC penalty: wide=%.2f "
                             "narrow=%.2f (DITTO_DIFF_MAC_PENALTY)\n",
                             m.wide, m.narrow);
                return m;
            }
            std::fprintf(
                stderr,
                "[ditto] ignoring invalid DITTO_DIFF_MAC_PENALTY=\"%s\"\n",
                s.c_str());
        }
        const double wide = measuredPenalty(128);
        const double narrow = measuredPenalty(16);
        const bool probed = wide > 0.0 && narrow > 0.0;
        if (probed) {
            m.wide = wide;
            m.narrow = std::max(narrow, wide);
        }
        std::fprintf(stderr,
                     "[ditto] diff MAC penalty: wide=%.2f narrow=%.2f "
                     "(%s)\n",
                     m.wide, m.narrow,
                     probed ? "micro-probe" : "default constants");
        return m;
    }();
    return model;
}

} // namespace

double
diffMacPenalty(int64_t n)
{
    const PenaltyModel &m = penaltyModel();
    return n >= 64 ? m.wide : m.narrow;
}

DiffFcEngine::DiffFcEngine(Int8Tensor weight) : weight_(std::move(weight))
{
    DITTO_ASSERT(weight_.shape().rank() == 2,
                 "fc weight must be [out, in]");
    weightT_ = transposeInt8(weight_);
}

Int32Tensor
DiffFcEngine::runDirect(const Int8Tensor &x) const
{
    return fullyConnectedInt8(x, weight_);
}

Int32Tensor
DiffFcEngine::runDiff(const Int8Tensor &x, const Int8Tensor &prev_x,
                      const Int32Tensor &prev_out, OpCounts *counts,
                      DiffPolicy policy) const
{
    DITTO_ASSERT(x.shape() == prev_x.shape(),
                 "fc diff input shape mismatch");
    const int64_t out_features = weight_.shape()[0];
    const DiffClassCounts probe = countTemporalDiffClasses(x, prev_x);
    if (counts) {
        // Every input element feeds out_features multiplies.
        counts->merge(probeOpCounts(probe, out_features));
    }
    if (policy == DiffPolicy::Auto && !diffWorthIt(probe, out_features))
        return runDirect(x);
    const DiffGemmPlan plan = encodeTemporalDiff(x, prev_x);
    return matmulDiffPlan(plan, weightT_, &prev_out);
}

Int32Tensor
DiffFcEngine::runDiffPre(const Int8Tensor &x, const Int16Tensor &d,
                         const Int32Tensor &prev_out, OpCounts *counts,
                         DiffPolicy policy) const
{
    DITTO_ASSERT(d.shape() == x.shape(),
                 "fc pre-diff operand shape mismatch");
    const int64_t out_features = weight_.shape()[0];
    const DiffClassCounts probe = countDiffClasses(d);
    if (counts)
        counts->merge(probeOpCounts(probe, out_features));
    if (policy == DiffPolicy::Auto && !diffWorthIt(probe, out_features))
        return runDirect(x);
    const DiffGemmPlan plan = encodeDiff(d);
    return matmulDiffPlan(plan, weightT_, &prev_out);
}

namespace detail {

Int32Tensor
runBatchWeightStationary(const Int8Tensor &x, int64_t slabs,
                         const Int8Tensor *prev_x,
                         const Int32Tensor *prev_out,
                         const uint8_t *primed, OpCounts *counts,
                         DiffPolicy policy, const Int8Tensor &weight,
                         const Int8Tensor &weight_t)
{
    DITTO_ASSERT(x.shape().rank() == 2 && slabs > 0 &&
                 x.shape()[0] % slabs == 0,
                 "batched fc input must stack equal row slabs");
    const int64_t slab_rows = x.shape()[0] / slabs;
    const int64_t in = x.shape()[1];
    const int64_t out_features = weight.shape()[0];
    const int64_t slab_elems = slab_rows * in;
    const int64_t out_elems = slab_rows * out_features;

    // Per-slab decisions, identical to runDiff's.
    std::vector<uint8_t> use_diff(static_cast<size_t>(slabs), 0);
    bool any_diff = false;
    for (int64_t s = 0; s < slabs; ++s) {
        if (!primed || !primed[s])
            continue;
        DITTO_ASSERT(prev_x && prev_out,
                     "primed slabs need previous state");
        DITTO_ASSERT(prev_x->shape() == x.shape() &&
                     prev_out->shape() ==
                         Shape({x.shape()[0], out_features}),
                     "batched fc previous state shape mismatch");
        const DiffClassCounts probe = countTemporalDiffClasses(
            x, *prev_x, s * slab_elems, slab_elems);
        if (counts)
            counts[s].merge(probeOpCounts(probe, out_features));
        use_diff[s] = policy == DiffPolicy::ForceDiff ||
                      diffWorthIt(probe, out_features);
        any_diff |= use_diff[s] != 0;
    }

    Int32Tensor out(Shape{x.shape()[0], out_features});
    const int8_t *xd = x.data().data();
    int32_t *od = out.data().data();

    // Contiguous direct runs fold into one GEMM each (batch rows into M).
    for (int64_t s = 0; s < slabs;) {
        if (use_diff[s]) {
            ++s;
            continue;
        }
        int64_t e = s;
        while (e < slabs && !use_diff[e])
            ++e;
        kernels::gemmInt8Into(xd + s * slab_elems, (e - s) * slab_rows, in,
                              weight.data().data(), out_features,
                              /*trans_b=*/true, od + s * out_elems);
        s = e;
    }
    if (!any_diff)
        return out;

    // Diff slabs: per-slab plans, one batched dispatch against the
    // cached transposed weight.
    std::vector<DiffGemmPlan> plans;
    plans.reserve(static_cast<size_t>(slabs));
    std::vector<kernels::DiffGemmBatchItem> items;
    items.reserve(static_cast<size_t>(slabs));
    for (int64_t s = 0; s < slabs; ++s) {
        if (!use_diff[s])
            continue;
        std::memcpy(od + s * out_elems,
                    prev_out->data().data() + s * out_elems,
                    static_cast<size_t>(out_elems) * sizeof(int32_t));
        plans.push_back(encodeTemporalDiffRegion(x, *prev_x,
                                                 s * slab_elems, slab_rows,
                                                 in));
        items.push_back({&plans.back(), weight_t.data().data(),
                         od + s * out_elems});
    }
    kernels::diffGemmBatch(items, out_features, /*transpose_b=*/false);
    return out;
}

Int32Tensor
runBatchWeightStationaryPre(const Int8Tensor &x, const Int16Tensor &d,
                            int64_t slabs, const Int32Tensor *prev_out,
                            const uint8_t *primed, OpCounts *counts,
                            DiffPolicy policy, const Int8Tensor &weight,
                            const Int8Tensor &weight_t)
{
    DITTO_ASSERT(x.shape().rank() == 2 && slabs > 0 &&
                 x.shape()[0] % slabs == 0,
                 "batched fc input must stack equal row slabs");
    DITTO_ASSERT(d.shape() == x.shape(),
                 "batched fc pre-diff operand shape mismatch");
    const int64_t slab_rows = x.shape()[0] / slabs;
    const int64_t in = x.shape()[1];
    const int64_t out_features = weight.shape()[0];
    const int64_t slab_elems = slab_rows * in;
    const int64_t out_elems = slab_rows * out_features;

    // Per-slab decisions, identical to runDiffPre's.
    std::vector<uint8_t> use_diff(static_cast<size_t>(slabs), 0);
    bool any_diff = false;
    for (int64_t s = 0; s < slabs; ++s) {
        if (!primed || !primed[s])
            continue;
        DITTO_ASSERT(prev_out &&
                     prev_out->shape() ==
                         Shape({x.shape()[0], out_features}),
                     "batched fc previous output shape mismatch");
        const DiffClassCounts probe =
            countDiffClasses(d, s * slab_elems, slab_elems);
        if (counts)
            counts[s].merge(probeOpCounts(probe, out_features));
        use_diff[s] = policy == DiffPolicy::ForceDiff ||
                      diffWorthIt(probe, out_features);
        any_diff |= use_diff[s] != 0;
    }

    Int32Tensor out(Shape{x.shape()[0], out_features});
    const int8_t *xd = x.data().data();
    int32_t *od = out.data().data();

    // Contiguous direct runs fold into one GEMM each.
    for (int64_t s = 0; s < slabs;) {
        if (use_diff[s]) {
            ++s;
            continue;
        }
        int64_t e = s;
        while (e < slabs && !use_diff[e])
            ++e;
        kernels::gemmInt8Into(xd + s * slab_elems, (e - s) * slab_rows, in,
                              weight.data().data(), out_features,
                              /*trans_b=*/true, od + s * out_elems);
        s = e;
    }
    if (!any_diff)
        return out;

    // Diff slabs: per-slab plans over `d` regions, one batched dispatch.
    std::vector<DiffGemmPlan> plans;
    plans.reserve(static_cast<size_t>(slabs));
    std::vector<kernels::DiffGemmBatchItem> items;
    items.reserve(static_cast<size_t>(slabs));
    for (int64_t s = 0; s < slabs; ++s) {
        if (!use_diff[s])
            continue;
        std::memcpy(od + s * out_elems,
                    prev_out->data().data() + s * out_elems,
                    static_cast<size_t>(out_elems) * sizeof(int32_t));
        plans.push_back(
            encodeDiffRegion(d, s * slab_elems, slab_rows, in));
        items.push_back({&plans.back(), weight_t.data().data(),
                         od + s * out_elems});
    }
    kernels::diffGemmBatch(items, out_features, /*transpose_b=*/false);
    return out;
}

} // namespace detail

Int32Tensor
DiffFcEngine::runBatch(const Int8Tensor &x, int64_t slabs,
                       const Int8Tensor *prev_x, const Int32Tensor *prev_out,
                       const uint8_t *primed, OpCounts *counts,
                       DiffPolicy policy) const
{
    return detail::runBatchWeightStationary(x, slabs, prev_x, prev_out,
                                            primed, counts, policy,
                                            weight_, weightT_);
}

Int32Tensor
DiffFcEngine::runBatchPre(const Int8Tensor &x, const Int16Tensor &d,
                          int64_t slabs, const Int32Tensor *prev_out,
                          const uint8_t *primed, OpCounts *counts,
                          DiffPolicy policy) const
{
    return detail::runBatchWeightStationaryPre(x, d, slabs, prev_out,
                                               primed, counts, policy,
                                               weight_, weightT_);
}

DiffConvEngine::DiffConvEngine(Int8Tensor weight, Conv2dParams params)
    : weight_(std::move(weight)), params_(params)
{
    DITTO_ASSERT(weight_.shape().rank() == 4,
                 "conv weight must be OIHW");
    // The OIHW weight viewed as [Cout, Cin*K*K], transposed once so
    // the sparse conv delta reads contiguous tap rows, plus the
    // kx-reversed regrouping the stride-1 interior fast path wants.
    const int64_t cout = weight_.shape()[0];
    const int64_t kk = weight_.shape()[2];
    Int8Tensor wmat(Shape{cout, weight_.numel() / cout});
    std::copy(weight_.data().begin(), weight_.data().end(),
              wmat.data().begin());
    wmatT_ = transposeInt8(wmat);
    wrevT_ = Int8Tensor(wmatT_.shape());
    const int64_t cin = weight_.shape()[1];
    for (int64_t ic = 0; ic < cin; ++ic)
        for (int64_t ky = 0; ky < kk; ++ky)
            for (int64_t kx = 0; kx < kk; ++kx)
                std::copy(
                    wmatT_.data().begin() +
                        ((ic * kk + ky) * kk + kx) * cout,
                    wmatT_.data().begin() +
                        ((ic * kk + ky) * kk + kx + 1) * cout,
                    wrevT_.data().begin() +
                        ((ic * kk + ky) * kk + (kk - 1 - kx)) * cout);
}

Int32Tensor
DiffConvEngine::runDirect(const Int8Tensor &x) const
{
    return conv2dInt8(x, weight_, params_);
}

Int32Tensor
DiffConvEngine::runDiff(const Int8Tensor &x, const Int8Tensor &prev_x,
                        const Int32Tensor &prev_out, OpCounts *counts,
                        DiffPolicy policy) const
{
    DITTO_ASSERT(x.shape() == prev_x.shape(),
                 "conv diff input shape mismatch");
    DITTO_ASSERT(x.shape().rank() == 4, "conv diff input must be NCHW");
    const int64_t batches = x.shape()[0];
    const int64_t cin = x.shape()[1];
    const int64_t h = x.shape()[2];
    const int64_t w = x.shape()[3];
    const int64_t oh = params_.outExtent(h);
    const int64_t ow = params_.outExtent(w);
    const int64_t cout = weight_.shape()[0];
    // Each input element is touched by roughly
    // out_channels * k * k / stride^2 multiplies; use the exact
    // average macs / input elements for the tally weight (same
    // convention as the dense reference and the BOPs model).
    const int64_t per_elem = std::max<int64_t>(
        1, cout * params_.kernel * params_.kernel /
               (params_.stride * params_.stride));

    const DiffClassCounts probe = countTemporalDiffClasses(x, prev_x);
    if (counts)
        counts->merge(probeOpCounts(probe, per_elem));
    // The interior fast path accumulates kernel*cout-wide rows; use
    // that as the amortization width for the cost model.
    if (policy == DiffPolicy::Auto &&
        !diffWorthIt(probe, params_.kernel * cout))
        return runDirect(x);

    // The raw [Cin, H*W] difference slab is encoded per batch — no
    // im2col expansion — and scattered through the cached transposed
    // weights into a pixel-major delta; slabs execute through the
    // batched scatter so multi-batch tensors parallelize across slabs.
    std::vector<DiffGemmPlan> plans;
    plans.reserve(static_cast<size_t>(batches));
    for (int64_t b = 0; b < batches; ++b)
        plans.push_back(encodeTemporalDiffRegion(x, prev_x,
                                                 b * cin * h * w, cin,
                                                 h * w));
    const Int32Tensor delta =
        convDeltaDiffPlanBatch(plans, wmatT_, wrevT_, params_, h, w);
    return addConvDeltaInt32(prev_out, delta);
}

Int32Tensor
DiffConvEngine::runDiffPre(const Int8Tensor &x, const Int16Tensor &d,
                           const Int32Tensor &prev_out, OpCounts *counts,
                           DiffPolicy policy) const
{
    DITTO_ASSERT(d.shape() == x.shape(),
                 "conv pre-diff operand shape mismatch");
    DITTO_ASSERT(x.shape().rank() == 4, "conv diff input must be NCHW");
    const int64_t batches = x.shape()[0];
    const int64_t cin = x.shape()[1];
    const int64_t h = x.shape()[2];
    const int64_t w = x.shape()[3];
    const int64_t cout = weight_.shape()[0];
    const int64_t per_elem = std::max<int64_t>(
        1, cout * params_.kernel * params_.kernel /
               (params_.stride * params_.stride));

    const DiffClassCounts probe = countDiffClasses(d);
    if (counts)
        counts->merge(probeOpCounts(probe, per_elem));
    if (policy == DiffPolicy::Auto &&
        !diffWorthIt(probe, params_.kernel * cout))
        return runDirect(x);

    std::vector<DiffGemmPlan> plans;
    plans.reserve(static_cast<size_t>(batches));
    for (int64_t b = 0; b < batches; ++b)
        plans.push_back(encodeDiffRegion(d, b * cin * h * w, cin, h * w));
    const Int32Tensor delta =
        convDeltaDiffPlanBatch(plans, wmatT_, wrevT_, params_, h, w);
    return addConvDeltaInt32(prev_out, delta);
}

Int32Tensor
DiffConvEngine::runBatch(const Int8Tensor &x, const Int8Tensor *prev_x,
                         const Int32Tensor *prev_out, const uint8_t *primed,
                         OpCounts *counts, DiffPolicy policy) const
{
    DITTO_ASSERT(x.shape().rank() == 4, "conv batch input must be NCHW");
    const int64_t batches = x.shape()[0];
    const int64_t cin = x.shape()[1];
    const int64_t h = x.shape()[2];
    const int64_t w = x.shape()[3];
    const int64_t oh = params_.outExtent(h);
    const int64_t ow = params_.outExtent(w);
    const int64_t cout = weight_.shape()[0];
    const int64_t slab_elems = cin * h * w;
    const int64_t per_elem = std::max<int64_t>(
        1, cout * params_.kernel * params_.kernel /
               (params_.stride * params_.stride));

    // Per-slab decisions, identical to a single-batch runDiff.
    std::vector<uint8_t> use_diff(static_cast<size_t>(batches), 0);
    bool any_diff = false;
    for (int64_t b = 0; b < batches; ++b) {
        if (!primed || !primed[b])
            continue;
        DITTO_ASSERT(prev_x && prev_out,
                     "primed slabs need previous state");
        DITTO_ASSERT(prev_x->shape() == x.shape() &&
                     prev_out->shape() == Shape({batches, cout, oh, ow}),
                     "batched conv previous state shape mismatch");
        const DiffClassCounts probe = countTemporalDiffClasses(
            x, *prev_x, b * slab_elems, slab_elems);
        if (counts)
            counts[b].merge(probeOpCounts(probe, per_elem));
        use_diff[b] = policy == DiffPolicy::ForceDiff ||
                      diffWorthIt(probe, params_.kernel * cout);
        any_diff |= use_diff[b] != 0;
    }

    Int32Tensor out(Shape{batches, cout, oh, ow});
    // Contiguous direct runs become one batched convolution each.
    for (int64_t b = 0; b < batches;) {
        if (use_diff[b]) {
            ++b;
            continue;
        }
        int64_t e = b;
        while (e < batches && !use_diff[e])
            ++e;
        kernels::conv2dInt8Into(x, weight_, params_, b, e - b, &out);
        b = e;
    }
    if (!any_diff)
        return out;

    // Diff slabs: per-slab plans, one batched scatter dispatch into a
    // delta compacted to just the diff slabs (mostly-direct batches
    // would otherwise zero-fill scratch they never touch), then fold
    // the deltas into the previous outputs run by run.
    std::vector<DiffGemmPlan> plans(static_cast<size_t>(batches));
    std::vector<kernels::ConvScatterBatchItem> items;
    items.reserve(static_cast<size_t>(batches));
    std::vector<int64_t> delta_slab(static_cast<size_t>(batches), -1);
    int64_t n_diff = 0;
    for (int64_t b = 0; b < batches; ++b)
        if (use_diff[b])
            delta_slab[static_cast<size_t>(b)] = n_diff++;
    Int32Tensor delta(Shape{n_diff * oh * ow, cout});
    for (int64_t b = 0; b < batches; ++b) {
        if (!use_diff[b])
            continue;
        plans[static_cast<size_t>(b)] = encodeTemporalDiffRegion(
            x, *prev_x, b * slab_elems, cin, h * w);
        items.push_back({&plans[static_cast<size_t>(b)],
                         delta.data().data() +
                             delta_slab[static_cast<size_t>(b)] * oh *
                                 ow * cout});
    }
    kernels::convDiffScatterBatch(items, wmatT_.data().data(),
                                  wrevT_.data().data(), params_, h, w);
    for (int64_t b = 0; b < batches;) {
        if (!use_diff[b]) {
            ++b;
            continue;
        }
        int64_t e = b;
        while (e < batches && use_diff[e])
            ++e;
        kernels::addConvDeltaInto(*prev_out, delta, b, e - b,
                                  delta_slab[static_cast<size_t>(b)],
                                  &out);
        b = e;
    }
    return out;
}

Int32Tensor
DiffConvEngine::runBatchPre(const Int8Tensor &x, const Int16Tensor &d,
                            const Int32Tensor *prev_out,
                            const uint8_t *primed, OpCounts *counts,
                            DiffPolicy policy) const
{
    DITTO_ASSERT(x.shape().rank() == 4, "conv batch input must be NCHW");
    DITTO_ASSERT(d.shape() == x.shape(),
                 "batched conv pre-diff operand shape mismatch");
    const int64_t batches = x.shape()[0];
    const int64_t cin = x.shape()[1];
    const int64_t h = x.shape()[2];
    const int64_t w = x.shape()[3];
    const int64_t oh = params_.outExtent(h);
    const int64_t ow = params_.outExtent(w);
    const int64_t cout = weight_.shape()[0];
    const int64_t slab_elems = cin * h * w;
    const int64_t per_elem = std::max<int64_t>(
        1, cout * params_.kernel * params_.kernel /
               (params_.stride * params_.stride));

    // Per-slab decisions, identical to a single-batch runDiffPre.
    std::vector<uint8_t> use_diff(static_cast<size_t>(batches), 0);
    bool any_diff = false;
    for (int64_t b = 0; b < batches; ++b) {
        if (!primed || !primed[b])
            continue;
        DITTO_ASSERT(prev_out &&
                     prev_out->shape() == Shape({batches, cout, oh, ow}),
                     "batched conv previous output shape mismatch");
        const DiffClassCounts probe =
            countDiffClasses(d, b * slab_elems, slab_elems);
        if (counts)
            counts[b].merge(probeOpCounts(probe, per_elem));
        use_diff[b] = policy == DiffPolicy::ForceDiff ||
                      diffWorthIt(probe, params_.kernel * cout);
        any_diff |= use_diff[b] != 0;
    }

    Int32Tensor out(Shape{batches, cout, oh, ow});
    for (int64_t b = 0; b < batches;) {
        if (use_diff[b]) {
            ++b;
            continue;
        }
        int64_t e = b;
        while (e < batches && !use_diff[e])
            ++e;
        kernels::conv2dInt8Into(x, weight_, params_, b, e - b, &out);
        b = e;
    }
    if (!any_diff)
        return out;

    std::vector<DiffGemmPlan> plans(static_cast<size_t>(batches));
    std::vector<kernels::ConvScatterBatchItem> items;
    items.reserve(static_cast<size_t>(batches));
    std::vector<int64_t> delta_slab(static_cast<size_t>(batches), -1);
    int64_t n_diff = 0;
    for (int64_t b = 0; b < batches; ++b)
        if (use_diff[b])
            delta_slab[static_cast<size_t>(b)] = n_diff++;
    Int32Tensor delta(Shape{n_diff * oh * ow, cout});
    for (int64_t b = 0; b < batches; ++b) {
        if (!use_diff[b])
            continue;
        plans[static_cast<size_t>(b)] =
            encodeDiffRegion(d, b * slab_elems, cin, h * w);
        items.push_back({&plans[static_cast<size_t>(b)],
                         delta.data().data() +
                             delta_slab[static_cast<size_t>(b)] * oh *
                                 ow * cout});
    }
    kernels::convDiffScatterBatch(items, wmatT_.data().data(),
                                  wrevT_.data().data(), params_, h, w);
    for (int64_t b = 0; b < batches;) {
        if (!use_diff[b]) {
            ++b;
            continue;
        }
        int64_t e = b;
        while (e < batches && use_diff[e])
            ++e;
        kernels::addConvDeltaInto(*prev_out, delta, b, e - b,
                                  delta_slab[static_cast<size_t>(b)],
                                  &out);
        b = e;
    }
    return out;
}

namespace naive {

Int32Tensor
fcRunDiff(const Int8Tensor &x, const Int8Tensor &prev_x,
          const Int32Tensor &prev_out, const Int8Tensor &weight,
          OpCounts *counts)
{
    DITTO_ASSERT(x.shape() == prev_x.shape(),
                 "fc diff input shape mismatch");
    const Int16Tensor diff = subtractInt8(x, prev_x);
    if (counts)
        counts->merge(tallyOps(diff, weight.shape()[0]));
    // Explicitly the fast dense kernel, not naive::'s scalar loop:
    // this reference isolates "dense diff" from "sparse diff".
    const Int32Tensor delta = ditto::fullyConnectedDiffInt16(diff, weight);
    return addInt32(prev_out, delta);
}

Int32Tensor
convRunDiff(const Int8Tensor &x, const Int8Tensor &prev_x,
            const Int32Tensor &prev_out, const Int8Tensor &weight,
            const Conv2dParams &params, OpCounts *counts)
{
    DITTO_ASSERT(x.shape() == prev_x.shape(),
                 "conv diff input shape mismatch");
    const Int16Tensor diff = subtractInt8(x, prev_x);
    if (counts) {
        // The historic approximation: each input element is charged
        // out_channels * k * k / stride^2 multiplies.
        const int64_t per_elem = std::max<int64_t>(
            1, weight.shape()[0] * weight.shape()[2] * weight.shape()[3] /
                   (params.stride * params.stride));
        counts->merge(tallyOps(diff, per_elem));
    }
    const Int32Tensor delta = ditto::conv2dDiffInt16(diff, weight, params);
    return addInt32(prev_out, delta);
}

} // namespace naive

} // namespace ditto
