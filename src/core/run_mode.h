/**
 * @file
 * Execution mode and rollout result types shared by every executable
 * model surface (the graph runtime's CompiledModel, the MiniUnet
 * compatibility wrapper, the hand-wired parity reference and the
 * serving layer).
 */
#ifndef DITTO_CORE_RUN_MODE_H
#define DITTO_CORE_RUN_MODE_H

#include <cstdint>

#include "core/diff_linear.h"
#include "tensor/tensor.h"

namespace ditto {

/** Execution mode of a denoising rollout. */
enum class RunMode
{
    Fp32,
    QuantDirect,
    QuantDitto,
};

/** Result of a full reverse-diffusion rollout. */
struct RolloutResult
{
    FloatTensor finalImage;
    /** Multiplier-lane tallies accumulated over all Ditto diff steps. */
    OpCounts dittoOps;
    /** MACs executed per step (for relative-BOPs reporting). */
    int64_t totalMacsPerStep = 0;
};

} // namespace ditto

#endif // DITTO_CORE_RUN_MODE_H
