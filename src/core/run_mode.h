/**
 * @file
 * Execution mode and rollout result types shared by every executable
 * model surface (the graph runtime's CompiledModel, the MiniUnet
 * compatibility wrapper, the hand-wired parity reference and the
 * serving layer).
 */
#ifndef DITTO_CORE_RUN_MODE_H
#define DITTO_CORE_RUN_MODE_H

#include <cstdint>
#include <vector>

#include "core/diff_linear.h"
#include "stats/fidelity.h"
#include "tensor/tensor.h"

namespace ditto {

/** Execution mode of a denoising rollout. */
enum class RunMode
{
    Fp32,
    QuantDirect,
    QuantDitto,
    /**
     * Approximate cross-step block reuse (docs/approx_reuse.md): like
     * QuantDitto, but blocks whose Defo probe reports a sufficiently
     * stable temporal difference are skipped and their cached previous
     * output replayed. The only mode that trades bits for speed; the
     * three modes above stay bitwise identical to each other's exact
     * semantics.
     */
    ApproxDitto,
};

/** Result of a full reverse-diffusion rollout. */
struct RolloutResult
{
    FloatTensor finalImage;
    /** Multiplier-lane tallies accumulated over all Ditto diff steps. */
    OpCounts dittoOps;
    /** MACs executed per step (for relative-BOPs reporting). */
    int64_t totalMacsPerStep = 0;

    /**
     * ApproxDitto only: per-program-node skip counts over the whole
     * rollout, index-aligned with CompiledModel::nodeReports(). Empty
     * in the exact modes.
     */
    std::vector<int64_t> nodeSkips;

    /**
     * Filled by rolloutWithFidelity(): fidelity of the evolving image
     * against a lockstep exact (QuantDitto) rollout after each step,
     * plus the end-to-end comparison of the final images.
     */
    std::vector<FidelityStats> stepFidelity;
    FidelityStats fidelity;
    bool hasFidelity = false;
};

} // namespace ditto

#endif // DITTO_CORE_RUN_MODE_H
