/**
 * @file
 * Defo controller implementation.
 */
#include "core/defo.h"

#include "common/logging.h"

namespace ditto {

const char *
flowPolicyName(FlowPolicy policy)
{
    switch (policy) {
      case FlowPolicy::AlwaysAct: return "act";
      case FlowPolicy::AlwaysDiff: return "temporal-diff";
      case FlowPolicy::AlwaysSpatial: return "spatial-diff";
      case FlowPolicy::Defo: return "Defo";
      case FlowPolicy::DefoPlus: return "Defo+";
      case FlowPolicy::DynamicDefo: return "Dynamic-Defo";
      case FlowPolicy::Ideal: return "Ideal";
      case FlowPolicy::IdealPlus: return "Ideal+";
    }
    DITTO_PANIC("unknown FlowPolicy");
}

DefoController::DefoController(FlowPolicy policy, int num_layers)
    : policy_(policy), table_(static_cast<size_t>(num_layers))
{
    DITTO_ASSERT(num_layers > 0, "empty layer table");
}

ExecMode
DefoController::actStyleMode() const
{
    // Under Defo+ (and its oracle) "original" execution uses spatial
    // differences, which the hardware supports with an offset register
    // and a multiplexer in the Encoding Unit.
    return (policy_ == FlowPolicy::DefoPlus ||
            policy_ == FlowPolicy::IdealPlus ||
            policy_ == FlowPolicy::AlwaysSpatial)
        ? ExecMode::SpatialDiff : ExecMode::Act;
}

ExecMode
DefoController::chooseMode(int layer, int step) const
{
    const Entry &e = table_[layer];
    switch (policy_) {
      case FlowPolicy::AlwaysAct:
        return ExecMode::Act;
      case FlowPolicy::AlwaysSpatial:
        return ExecMode::SpatialDiff;
      case FlowPolicy::AlwaysDiff:
        // The first step has no predecessor; it must run full bit-width.
        return step == 0 ? ExecMode::Act : ExecMode::TemporalDiff;
      case FlowPolicy::Defo:
      case FlowPolicy::DefoPlus:
        if (step == 0)
            return actStyleMode();
        if (step == 1)
            return ExecMode::TemporalDiff;
        return e.useDiff ? ExecMode::TemporalDiff : actStyleMode();
      case FlowPolicy::DynamicDefo:
        if (step == 0)
            return ExecMode::Act;
        if (step == 1)
            return ExecMode::TemporalDiff;
        return (e.useDiff && !e.demoted) ? ExecMode::TemporalDiff
                                         : ExecMode::Act;
      case FlowPolicy::Ideal:
        if (step == 0)
            return ExecMode::Act;
        return e.oracleTemporal <= e.oracleAct ? ExecMode::TemporalDiff
                                               : ExecMode::Act;
      case FlowPolicy::IdealPlus: {
        if (step == 0)
            return ExecMode::SpatialDiff;
        return e.oracleTemporal <= e.oracleSpatial
            ? ExecMode::TemporalDiff : ExecMode::SpatialDiff;
      }
    }
    DITTO_PANIC("unknown FlowPolicy");
}

void
DefoController::observe(int layer, int step, ExecMode used, double cycles)
{
    Entry &e = table_[layer];
    if (step == 0) {
        e.actCycles = cycles;
        return;
    }
    if (step == 1 && used == ExecMode::TemporalDiff) {
        e.diffCycles = cycles;
        // The locked decision for all later steps (Fig. 9): difference
        // processing stays enabled only when it beat the first step.
        e.useDiff = e.actCycles > e.diffCycles;
        return;
    }
    // Dynamic-Ditto: a difference-mode layer whose *running mean*
    // cycles exceed the recorded act cycles is demoted permanently
    // (the reverse transition is impossible to evaluate while in act
    // mode). The running mean, rather than a single step, keeps one
    // expensive phase of an oscillating workload from locking the
    // layer out of a mode that is better on average.
    if (policy_ == FlowPolicy::DynamicDefo &&
        used == ExecMode::TemporalDiff) {
        e.diffCycleSum += cycles;
        ++e.diffCycleCount;
        if (e.diffCycleCount >= 4 &&
            e.diffCycleSum / e.diffCycleCount > e.actCycles) {
            e.demoted = true;
        }
    }
}

void
DefoController::observeOracle(int layer, int step, double act_cycles,
                              double temporal_cycles, double spatial_cycles)
{
    (void)step;
    Entry &e = table_[layer];
    e.oracleAct = act_cycles;
    e.oracleTemporal = temporal_cycles;
    e.oracleSpatial = spatial_cycles;
}

bool
DefoController::revertedToAct(int layer) const
{
    const Entry &e = table_[layer];
    if (policy_ == FlowPolicy::DynamicDefo)
        return !e.useDiff || e.demoted;
    return !e.useDiff;
}

} // namespace ditto
