/**
 * @file
 * MiniUnet implementation.
 */
#include "core/legacy_unet.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/logging.h"
#include "common/rng.h"
#include "tensor/slab.h"
#include "trace/calibrate.h"

namespace ditto {

namespace {

/** Quantization-point indices for static activation scales. */
enum ActScaleIndex
{
    kScaleConvIn,
    kScaleRes1,
    kScaleRes2,
    kScaleAttnIn,   //!< shared by the q/k/v 1x1 convolutions
    kScaleAttnQ,
    kScaleAttnK,
    kScaleAttnP,
    kScaleAttnV,
    kScaleProj,
    kScaleCrossIn,
    kScaleCrossQ,
    kScaleCrossP,
    kScaleCrossO,
    kScaleConvOut,
    kNumActScales,
};

/** Ditto state slots for previous-step input codes. */
enum InSlot
{
    kInConvIn,
    kInRes1,
    kInRes2,
    kInAttnQ,
    kInAttnK,
    kInAttnV,
    kInQkQ,
    kInQkK,
    kInPvP,
    kInPvV,
    kInProj,
    kInCrossQ,
    kInCrossQkQ,
    kInCrossPvP,
    kInCrossOut,
    kInConvOut,
    kNumInSlots,
};

/** Ditto state slots for previous-step int32 outputs. */
enum OutSlot
{
    kOutConvIn,
    kOutRes1,
    kOutRes2,
    kOutAttnQ,
    kOutAttnK,
    kOutAttnV,
    kOutQk,
    kOutPv,
    kOutProj,
    kOutCrossQ,
    kOutCrossQk,
    kOutCrossPv,
    kOutCrossOut,
    kOutConvOut,
    kNumOutSlots,
};

/** He-style random weight init. */
FloatTensor
randomWeight(Rng &rng, const Shape &shape, int64_t fan_in)
{
    FloatTensor w(shape);
    const double std = 1.0 / std::sqrt(static_cast<double>(fan_in));
    for (auto &v : w.data())
        v = static_cast<float>(rng.normal(0.0, std));
    return w;
}

/** NCHW (1,C,H,W) -> token matrix [H*W, C]. */
FloatTensor
nchwToTokens(const FloatTensor &x)
{
    DITTO_ASSERT(x.shape().rank() == 4 && x.shape()[0] == 1,
                 "expected a single NCHW feature map");
    const int64_t c = x.shape()[1];
    const int64_t h = x.shape()[2];
    const int64_t w = x.shape()[3];
    FloatTensor out(Shape{h * w, c});
    for (int64_t ci = 0; ci < c; ++ci)
        for (int64_t y = 0; y < h; ++y)
            for (int64_t xw = 0; xw < w; ++xw)
                out.at(y * w + xw, ci) = x.at(0, ci, y, xw);
    return out;
}

/** Token matrix [H*W, C] -> NCHW (1,C,H,W). */
FloatTensor
tokensToNchw(const FloatTensor &t, int64_t h, int64_t w)
{
    DITTO_ASSERT(t.shape().rank() == 2 && t.shape()[0] == h * w,
                 "token count mismatch");
    const int64_t c = t.shape()[1];
    FloatTensor out(Shape{1, c, h, w});
    for (int64_t ci = 0; ci < c; ++ci)
        for (int64_t y = 0; y < h; ++y)
            for (int64_t xw = 0; xw < w; ++xw)
                out.at(0, ci, y, xw) = t.at(y * w + xw, ci);
    return out;
}

/**
 * Stacked NCHW (B,C,H,W) -> stacked token matrix [B*H*W, C]; slab b
 * holds exactly nchwToTokens of request b's feature map.
 */
FloatTensor
nchwToTokensBatch(const FloatTensor &x)
{
    DITTO_ASSERT(x.shape().rank() == 4, "expected NCHW feature maps");
    const int64_t bsz = x.shape()[0];
    const int64_t c = x.shape()[1];
    const int64_t h = x.shape()[2];
    const int64_t w = x.shape()[3];
    FloatTensor out(Shape{bsz * h * w, c});
    for (int64_t b = 0; b < bsz; ++b)
        for (int64_t ci = 0; ci < c; ++ci)
            for (int64_t y = 0; y < h; ++y)
                for (int64_t xw = 0; xw < w; ++xw)
                    out.at((b * h + y) * w + xw, ci) = x.at(b, ci, y, xw);
    return out;
}

/** Stacked token matrix [B*H*W, C] -> stacked NCHW (B,C,H,W). */
FloatTensor
tokensToNchwBatch(const FloatTensor &t, int64_t bsz, int64_t h, int64_t w)
{
    DITTO_ASSERT(t.shape().rank() == 2 && t.shape()[0] == bsz * h * w,
                 "token count mismatch");
    const int64_t c = t.shape()[1];
    FloatTensor out(Shape{bsz, c, h, w});
    for (int64_t b = 0; b < bsz; ++b)
        for (int64_t ci = 0; ci < c; ++ci)
            for (int64_t y = 0; y < h; ++y)
                for (int64_t xw = 0; xw < w; ++xw)
                    out.at(b, ci, y, xw) = t.at((b * h + y) * w + xw, ci);
    return out;
}

} // namespace

void
HandWiredMiniUnet::BatchDittoState::appendSlabs(int64_t count)
{
    DITTO_ASSERT(count > 0, "appendSlabs needs a positive count");
    const int64_t b = batch();
    if (b > 0) {
        // Empty slots are not materialized yet; the first forward
        // sizes them to the then-current batch.
        for (Int8Tensor &t : prevIn)
            if (t.numel() > 0)
                t = slab::appended(t, b, count);
        for (Int32Tensor &t : prevOut)
            if (t.numel() > 0)
                t = slab::appended(t, b, count);
    }
    primed.insert(primed.end(), static_cast<size_t>(count), 0);
}

void
HandWiredMiniUnet::BatchDittoState::removeSlab(int64_t i)
{
    const int64_t b = batch();
    DITTO_ASSERT(i >= 0 && i < b, "removeSlab index out of range");
    if (b == 1) {
        // Last request leaving: drop the state wholesale so tensor
        // shapes never hit a zero dimension.
        prevIn.clear();
        prevOut.clear();
        primed.clear();
        return;
    }
    for (Int8Tensor &t : prevIn)
        if (t.numel() > 0)
            t = slab::removed(t, b, i);
    for (Int32Tensor &t : prevOut)
        if (t.numel() > 0)
            t = slab::removed(t, b, i);
    primed.erase(primed.begin() + i);
}

HandWiredMiniUnet::HandWiredMiniUnet(MiniUnetConfig cfg) : cfg_(cfg)
{
    DITTO_ASSERT(cfg_.channels >= 2 && cfg_.channels % 2 == 0,
                 "channels must be even (two GroupNorm groups)");
    Rng rng = Rng::fromKeys(cfg_.seed, 0x11B5);
    const int64_t c = cfg_.channels;
    const int64_t ic = cfg_.inChannels;

    wConvIn_ = randomWeight(rng, Shape{c, ic, 3, 3}, ic * 9);
    wRes1_ = randomWeight(rng, Shape{c, c, 3, 3}, c * 9);
    wRes2_ = randomWeight(rng, Shape{c, c, 3, 3}, c * 9);
    wAttnQ_ = randomWeight(rng, Shape{c, c, 1, 1}, c);
    wAttnK_ = randomWeight(rng, Shape{c, c, 1, 1}, c);
    wAttnV_ = randomWeight(rng, Shape{c, c, 1, 1}, c);
    wAttnProj_ = randomWeight(rng, Shape{c, c, 1, 1}, c);
    wCrossQ_ = randomWeight(rng, Shape{c, c}, c);
    wCrossK_ = randomWeight(rng, Shape{c, cfg_.ctxDim}, cfg_.ctxDim);
    wCrossV_ = randomWeight(rng, Shape{c, cfg_.ctxDim}, cfg_.ctxDim);
    wCrossOut_ = randomWeight(rng, Shape{c, c}, c);
    wConvOut_ = randomWeight(rng, Shape{ic, c, 3, 3}, c * 9);

    context_ = FloatTensor(Shape{cfg_.ctxTokens, cfg_.ctxDim});
    context_.fillNormal(rng, 0.0, 1.0);

    noiseInit_ =
        FloatTensor(Shape{1, ic, cfg_.resolution, cfg_.resolution});
    noiseInit_.fillNormal(rng, 0.0, 1.0);

    // Quantize weights once (per-tensor symmetric).
    auto quantw = [](const FloatTensor &w) {
        QuantWeight q;
        const QuantParams p = chooseDynamicScale(w);
        q.codes = quantize(w, p);
        q.scale = p.scale;
        return q;
    };
    qConvIn_ = quantw(wConvIn_);
    qRes1_ = quantw(wRes1_);
    qRes2_ = quantw(wRes2_);
    qAttnQ_ = quantw(wAttnQ_);
    qAttnK_ = quantw(wAttnK_);
    qAttnV_ = quantw(wAttnV_);
    qAttnProj_ = quantw(wAttnProj_);
    qCrossQ_ = quantw(wCrossQ_);
    qCrossOut_ = quantw(wCrossOut_);
    qConvOut_ = quantw(wConvOut_);

    // Project the constant context to K'/V' in FP32 and quantize the
    // results: they are weights from the hardware's point of view.
    const FloatTensor k_const = fullyConnected(context_, wCrossK_, nullptr);
    const FloatTensor v_const = fullyConnected(context_, wCrossV_, nullptr);
    qCrossKConst_ = quantw(k_const);
    qCrossVConst_ = quantw(v_const);

    // Persistent difference engines: weight-stationary layers keep
    // their engine (and its weight copy) for the model's lifetime
    // instead of rebuilding one per forward step.
    eConvIn_.emplace(qConvIn_.codes, Conv2dParams{ic, c, 3, 1, 1});
    eRes1_.emplace(qRes1_.codes, Conv2dParams{c, c, 3, 1, 1});
    eRes2_.emplace(qRes2_.codes, Conv2dParams{c, c, 3, 1, 1});
    eAttnQ_.emplace(qAttnQ_.codes, Conv2dParams{c, c, 1, 1, 0});
    eAttnK_.emplace(qAttnK_.codes, Conv2dParams{c, c, 1, 1, 0});
    eAttnV_.emplace(qAttnV_.codes, Conv2dParams{c, c, 1, 1, 0});
    eAttnProj_.emplace(qAttnProj_.codes, Conv2dParams{c, c, 1, 1, 0});
    eConvOut_.emplace(qConvOut_.codes, Conv2dParams{c, ic, 3, 1, 1});
    eCrossQ_.emplace(qCrossQ_.codes);
    eCrossOut_.emplace(qCrossOut_.codes);
    eCrossQk_.emplace(qCrossKConst_.codes);
    // P' x V' with constant V' is weight-stationary with V'^T as the
    // weight: O = P' V' = P' (V'^T)^T.
    eCrossPv_.emplace(transposeInt8(qCrossVConst_.codes));

    calibrateActScales();
}

void
HandWiredMiniUnet::calibrateActScales()
{
    // The calibration result is a pure function of the configuration
    // (weights, noise and trajectory all derive from cfg_.seed), so a
    // config-keyed disk cache lets repeated bench/test runs skip the
    // FP32 rollout. The leading salt versions the calibration
    // algorithm itself.
    // Salt 3: the fast vectorized expf changed softmax/SiLU numerics,
    // so scales calibrated by older builds must be recomputed.
    uint64_t key = hashMix(0xD1770ACC, 3);
    key = hashMix(key, static_cast<uint64_t>(cfg_.channels));
    key = hashMix(key, static_cast<uint64_t>(cfg_.resolution));
    key = hashMix(key, static_cast<uint64_t>(cfg_.inChannels));
    key = hashMix(key, static_cast<uint64_t>(cfg_.ctxTokens));
    key = hashMix(key, static_cast<uint64_t>(cfg_.ctxDim));
    key = hashMix(key, static_cast<uint64_t>(cfg_.steps));
    key = hashMix(key, cfg_.seed);
    key = hashMix(key, static_cast<uint64_t>(kNumActScales));
    if (loadCachedScales(key, kNumActScales, &actScale_))
        return;

    // Offline calibration: FP32 rollout, record max-abs at every
    // quantization point across all steps (Q-Diffusion style, one
    // static scale per point), with a 10% safety margin.
    std::vector<float> maxabs(kNumActScales, 0.0f);
    struct Observer
    {
        std::vector<float> *maxabs;
        void
        operator()(int idx, const FloatTensor &t) const
        {
            float m = (*maxabs)[idx];
            for (float v : t.data())
                m = std::max(m, std::fabs(v));
            (*maxabs)[idx] = m;
        }
    };
    observer_ = Observer{&maxabs};
    FloatTensor x = noiseInit_;
    for (int t = 0; t < cfg_.steps; ++t) {
        const FloatTensor eps = forwardFp32(x);
        x = add(x, affine(eps, -0.15f, 0.0f));
    }
    observer_ = nullptr;

    actScale_.resize(kNumActScales);
    for (int i = 0; i < kNumActScales; ++i)
        actScale_[i] = std::max(maxabs[i], 1e-6f) * 1.1f / 127.0f;
    storeCachedScales(key, actScale_);
}

FloatTensor
HandWiredMiniUnet::forwardFp32(const FloatTensor &x) const
{
    const int64_t c = cfg_.channels;
    const int64_t res = cfg_.resolution;
    const float inv_sqrt_c = 1.0f / std::sqrt(static_cast<float>(c));
    auto observe = [&](int idx, const FloatTensor &t) {
        if (observer_)
            observer_(idx, t);
    };
    const Conv2dParams p3{cfg_.inChannels, c, 3, 1, 1};
    const Conv2dParams p3c{c, c, 3, 1, 1};
    const Conv2dParams p1{c, c, 1, 1, 0};
    const Conv2dParams p3o{c, cfg_.inChannels, 3, 1, 1};

    observe(kScaleConvIn, x);
    const FloatTensor h0 = conv2d(x, wConvIn_, nullptr, p3);

    // Residual block.
    FloatTensor a = silu(groupNorm(h0, 2));
    observe(kScaleRes1, a);
    a = conv2d(a, wRes1_, nullptr, p3c);
    a = silu(groupNorm(a, 2));
    observe(kScaleRes2, a);
    a = conv2d(a, wRes2_, nullptr, p3c);
    const FloatTensor h1 = add(h0, a);

    // Self attention.
    FloatTensor g = groupNorm(h1, 2);
    observe(kScaleAttnIn, g);
    const FloatTensor q = nchwToTokens(conv2d(g, wAttnQ_, nullptr, p1));
    const FloatTensor k = nchwToTokens(conv2d(g, wAttnK_, nullptr, p1));
    const FloatTensor v = nchwToTokens(conv2d(g, wAttnV_, nullptr, p1));
    observe(kScaleAttnQ, q);
    observe(kScaleAttnK, k);
    observe(kScaleAttnV, v);
    FloatTensor s = matmulTransposed(q, k);
    s = affine(s, inv_sqrt_c, 0.0f);
    const FloatTensor prob = softmaxRows(s);
    observe(kScaleAttnP, prob);
    const FloatTensor o = matmul(prob, v);
    observe(kScaleProj, o);
    const FloatTensor proj =
        conv2d(tokensToNchw(o, res, res), wAttnProj_, nullptr, p1);
    const FloatTensor h2 = add(h1, proj);

    // Cross attention with constant context.
    const FloatTensor tok = nchwToTokens(h2);
    observe(kScaleCrossIn, tok);
    const FloatTensor q2 = fullyConnected(tok, wCrossQ_, nullptr);
    observe(kScaleCrossQ, q2);
    const FloatTensor k_const =
        fullyConnected(context_, wCrossK_, nullptr);
    const FloatTensor v_const =
        fullyConnected(context_, wCrossV_, nullptr);
    FloatTensor s2 = matmulTransposed(q2, k_const);
    s2 = affine(s2, inv_sqrt_c, 0.0f);
    const FloatTensor prob2 = softmaxRows(s2);
    observe(kScaleCrossP, prob2);
    const FloatTensor o2 = matmul(prob2, v_const);
    observe(kScaleCrossO, o2);
    const FloatTensor co = fullyConnected(o2, wCrossOut_, nullptr);
    const FloatTensor h3 = add(h2, tokensToNchw(co, res, res));

    // Output head.
    FloatTensor out = silu(groupNorm(h3, 2));
    observe(kScaleConvOut, out);
    return conv2d(out, wConvOut_, nullptr, p3o);
}

FloatTensor
HandWiredMiniUnet::forwardQuant(const FloatTensor &x, bool use_ditto,
                       DittoState *state, OpCounts *counts) const
{
    DITTO_ASSERT(!use_ditto || state != nullptr,
                 "Ditto mode needs persistent state");
    const int64_t c = cfg_.channels;
    const int64_t res = cfg_.resolution;
    const float inv_sqrt_c = 1.0f / std::sqrt(static_cast<float>(c));
    const bool primed = use_ditto && state->primed;
    if (use_ditto && state->prevIn.empty()) {
        state->prevIn.resize(kNumInSlots);
        state->prevOut.resize(kNumOutSlots);
    }

    // Weight-stationary convolution, optionally via differences; the
    // engines are persistent members so the diff path reuses them
    // instead of rebuilding one per step.
    auto run_conv = [&](const DiffConvEngine &eng, const QuantWeight &w,
                        const FloatTensor &in, int scale_idx,
                        InSlot in_slot, OutSlot out_slot) {
        const QuantParams qp{actScale_[scale_idx], 8};
        Int8Tensor codes = quantize(in, qp);
        Int32Tensor acc;
        if (primed) {
            acc = eng.runDiff(codes, state->prevIn[in_slot],
                              state->prevOut[out_slot], counts);
        } else {
            acc = eng.runDirect(codes);
        }
        if (use_ditto) {
            // Move the step's tensors into the state (no copies); the
            // dequantized return reads from the state slot.
            state->prevIn[in_slot] = std::move(codes);
            state->prevOut[out_slot] = std::move(acc);
            return dequantizeAccum(state->prevOut[out_slot],
                                   qp.scale * w.scale);
        }
        return dequantizeAccum(acc, qp.scale * w.scale);
    };
    // Weight-stationary FC, optionally via differences.
    auto run_fc = [&](const DiffFcEngine &eng, const QuantWeight &w,
                      const FloatTensor &in, int scale_idx, InSlot in_slot,
                      OutSlot out_slot) {
        const QuantParams qp{actScale_[scale_idx], 8};
        Int8Tensor codes = quantize(in, qp);
        Int32Tensor acc;
        if (primed) {
            acc = eng.runDiff(codes, state->prevIn[in_slot],
                              state->prevOut[out_slot], counts);
        } else {
            acc = eng.runDirect(codes);
        }
        if (use_ditto) {
            state->prevIn[in_slot] = std::move(codes);
            state->prevOut[out_slot] = std::move(acc);
            return dequantizeAccum(state->prevOut[out_slot],
                                   qp.scale * w.scale);
        }
        return dequantizeAccum(acc, qp.scale * w.scale);
    };

    const FloatTensor h0 = run_conv(*eConvIn_, qConvIn_, x, kScaleConvIn,
                                    kInConvIn, kOutConvIn);

    // Residual block (non-linear functions stay in FP32 on dequantized
    // values, as the Vector Processing Unit would).
    FloatTensor a = silu(groupNorm(h0, 2));
    a = run_conv(*eRes1_, qRes1_, a, kScaleRes1, kInRes1, kOutRes1);
    a = silu(groupNorm(a, 2));
    a = run_conv(*eRes2_, qRes2_, a, kScaleRes2, kInRes2, kOutRes2);
    const FloatTensor h1 = add(h0, a);

    // Self attention: QK and PV are dynamic-dynamic matmuls.
    FloatTensor g = groupNorm(h1, 2);
    const FloatTensor qf = nchwToTokens(run_conv(
        *eAttnQ_, qAttnQ_, g, kScaleAttnIn, kInAttnQ, kOutAttnQ));
    const FloatTensor kf = nchwToTokens(run_conv(
        *eAttnK_, qAttnK_, g, kScaleAttnIn, kInAttnK, kOutAttnK));
    const FloatTensor vf = nchwToTokens(run_conv(
        *eAttnV_, qAttnV_, g, kScaleAttnIn, kInAttnV, kOutAttnV));

    const QuantParams qpq{actScale_[kScaleAttnQ], 8};
    const QuantParams qpk{actScale_[kScaleAttnK], 8};
    Int8Tensor q_codes = quantize(qf, qpq);
    Int8Tensor k_codes = quantize(kf, qpk);
    Int32Tensor s_acc;
    if (primed) {
        s_acc = attentionScoresDiff(q_codes, state->prevIn[kInQkQ],
                                    k_codes, state->prevIn[kInQkK],
                                    state->prevOut[kOutQk], counts);
    } else {
        s_acc = attentionScoresDirect(q_codes, k_codes);
    }
    if (use_ditto) {
        state->prevIn[kInQkQ] = std::move(q_codes);
        state->prevIn[kInQkK] = std::move(k_codes);
        state->prevOut[kOutQk] = std::move(s_acc);
    }
    const Int32Tensor &s_ref =
        use_ditto ? state->prevOut[kOutQk] : s_acc;
    FloatTensor s = dequantizeAccum(s_ref, qpq.scale * qpk.scale);
    s = affine(s, inv_sqrt_c, 0.0f);
    const FloatTensor prob = softmaxRows(s);

    const QuantParams qpp{actScale_[kScaleAttnP], 8};
    const QuantParams qpv{actScale_[kScaleAttnV], 8};
    Int8Tensor p_codes = quantize(prob, qpp);
    Int8Tensor v_codes = quantize(vf, qpv);
    Int32Tensor o_acc;
    if (primed) {
        o_acc = attentionOutputDiff(p_codes, state->prevIn[kInPvP],
                                    v_codes, state->prevIn[kInPvV],
                                    state->prevOut[kOutPv], counts);
    } else {
        o_acc = attentionOutputDirect(p_codes, v_codes);
    }
    if (use_ditto) {
        state->prevIn[kInPvP] = std::move(p_codes);
        state->prevIn[kInPvV] = std::move(v_codes);
        state->prevOut[kOutPv] = std::move(o_acc);
    }
    const FloatTensor o = dequantizeAccum(
        use_ditto ? state->prevOut[kOutPv] : o_acc,
        qpp.scale * qpv.scale);

    const FloatTensor proj =
        run_conv(*eAttnProj_, qAttnProj_, tokensToNchw(o, res, res),
                 kScaleProj, kInProj, kOutProj);
    const FloatTensor h2 = add(h1, proj);

    // Cross attention: K'/V' constant, weight-stationary difference
    // processing applies directly.
    const FloatTensor tok = nchwToTokens(h2);
    const FloatTensor q2 = run_fc(*eCrossQ_, qCrossQ_, tok, kScaleCrossIn,
                                  kInCrossQ, kOutCrossQ);
    const QuantParams qpq2{actScale_[kScaleCrossQ], 8};
    Int8Tensor q2_codes = quantize(q2, qpq2);
    Int32Tensor s2_acc;
    if (primed) {
        s2_acc = eCrossQk_->runDiff(q2_codes, state->prevIn[kInCrossQkQ],
                                    state->prevOut[kOutCrossQk], counts);
    } else {
        s2_acc = eCrossQk_->runDirect(q2_codes);
    }
    if (use_ditto) {
        state->prevIn[kInCrossQkQ] = std::move(q2_codes);
        state->prevOut[kOutCrossQk] = std::move(s2_acc);
    }
    FloatTensor s2 =
        dequantizeAccum(use_ditto ? state->prevOut[kOutCrossQk] : s2_acc,
                        qpq2.scale * qCrossKConst_.scale);
    s2 = affine(s2, inv_sqrt_c, 0.0f);
    const FloatTensor prob2 = softmaxRows(s2);

    const QuantParams qpp2{actScale_[kScaleCrossP], 8};
    Int8Tensor p2_codes = quantize(prob2, qpp2);
    // P' x V' with constant V' runs as a weight-stationary layer with
    // V'^T as the weight (persistent eCrossPv_ engine).
    Int32Tensor o2_acc;
    if (primed) {
        o2_acc = eCrossPv_->runDiff(p2_codes, state->prevIn[kInCrossPvP],
                                    state->prevOut[kOutCrossPv], counts);
    } else {
        o2_acc = eCrossPv_->runDirect(p2_codes);
    }
    if (use_ditto) {
        state->prevIn[kInCrossPvP] = std::move(p2_codes);
        state->prevOut[kOutCrossPv] = std::move(o2_acc);
    }
    const FloatTensor o2 =
        dequantizeAccum(use_ditto ? state->prevOut[kOutCrossPv] : o2_acc,
                        qpp2.scale * qCrossVConst_.scale);

    const FloatTensor co = run_fc(*eCrossOut_, qCrossOut_, o2, kScaleCrossO,
                                  kInCrossOut, kOutCrossOut);
    const FloatTensor h3 = add(h2, tokensToNchw(co, res, res));

    FloatTensor out = silu(groupNorm(h3, 2));
    const FloatTensor eps = run_conv(*eConvOut_, qConvOut_, out,
                                     kScaleConvOut, kInConvOut, kOutConvOut);
    if (use_ditto)
        state->primed = true;
    return eps;
}

/**
 * Batched mirror of forwardQuant: activations stay stacked
 * ([B, C, H, W] feature maps, [B*tokens, C] token matrices) through
 * every layer, the persistent engines run their batched entry points
 * with per-slab primed flags and Defo decisions, and the Ditto state
 * slots hold the stacked tensors wholesale. Every per-element
 * computation — quantize, dequantize, norms, softmax, every GEMM row
 * and conv slab — is the single-request arithmetic on that request's
 * slab, which is what makes batched rollouts bitwise identical to
 * sequential ones.
 *
 * forwardQuant is deliberately NOT routed through this path with
 * B = 1: it stays an independent implementation so the
 * batched-vs-sequential parity suite (tests/test_serve.cc) checks a
 * real cross-implementation invariant rather than a tautology — the
 * same role the naive:: references play for the fast kernels. A layer
 * added to one forward must be added to both; the parity tests fail
 * loudly on any divergence.
 */
FloatTensor
HandWiredMiniUnet::forwardQuantBatch(const FloatTensor &x, bool use_ditto,
                            BatchDittoState *state, OpCounts *counts) const
{
    DITTO_ASSERT(x.shape().rank() == 4, "batched input must be NCHW");
    const int64_t bsz = x.shape()[0];
    DITTO_ASSERT(!use_ditto || state != nullptr,
                 "Ditto mode needs persistent batch state");
    DITTO_ASSERT(!use_ditto || state->batch() == bsz,
                 "batch state size mismatch");
    const int64_t c = cfg_.channels;
    const int64_t res = cfg_.resolution;
    const float inv_sqrt_c = 1.0f / std::sqrt(static_cast<float>(c));
    if (use_ditto && state->prevIn.empty()) {
        state->prevIn.resize(kNumInSlots);
        state->prevOut.resize(kNumOutSlots);
    }
    const uint8_t *primed = use_ditto ? state->primed.data() : nullptr;

    // Previous-state slot pointer, or null while nothing is primed
    // (the engines only dereference state for primed slabs).
    auto prev_in = [&](InSlot slot) -> const Int8Tensor * {
        return use_ditto && state->prevIn[slot].numel() > 0
                   ? &state->prevIn[slot]
                   : nullptr;
    };
    auto prev_out = [&](OutSlot slot) -> const Int32Tensor * {
        return use_ditto && state->prevOut[slot].numel() > 0
                   ? &state->prevOut[slot]
                   : nullptr;
    };

    // Weight-stationary convolution over the stacked batch.
    auto run_conv = [&](const DiffConvEngine &eng, const QuantWeight &w,
                        const FloatTensor &in, int scale_idx,
                        InSlot in_slot, OutSlot out_slot) {
        const QuantParams qp{actScale_[scale_idx], 8};
        Int8Tensor codes = quantize(in, qp);
        Int32Tensor acc =
            eng.runBatch(codes, prev_in(in_slot), prev_out(out_slot),
                         primed, counts);
        if (use_ditto) {
            state->prevIn[in_slot] = std::move(codes);
            state->prevOut[out_slot] = std::move(acc);
            return dequantizeAccum(state->prevOut[out_slot],
                                   qp.scale * w.scale);
        }
        return dequantizeAccum(acc, qp.scale * w.scale);
    };
    // Weight-stationary FC over the stacked token rows.
    auto run_fc = [&](const DiffFcEngine &eng, const QuantWeight &w,
                      const FloatTensor &in, int scale_idx, InSlot in_slot,
                      OutSlot out_slot) {
        const QuantParams qp{actScale_[scale_idx], 8};
        Int8Tensor codes = quantize(in, qp);
        Int32Tensor acc =
            eng.runBatch(codes, bsz, prev_in(in_slot), prev_out(out_slot),
                         primed, counts);
        if (use_ditto) {
            state->prevIn[in_slot] = std::move(codes);
            state->prevOut[out_slot] = std::move(acc);
            return dequantizeAccum(state->prevOut[out_slot],
                                   qp.scale * w.scale);
        }
        return dequantizeAccum(acc, qp.scale * w.scale);
    };

    const FloatTensor h0 = run_conv(*eConvIn_, qConvIn_, x, kScaleConvIn,
                                    kInConvIn, kOutConvIn);

    // Residual block.
    FloatTensor a = silu(groupNorm(h0, 2));
    a = run_conv(*eRes1_, qRes1_, a, kScaleRes1, kInRes1, kOutRes1);
    a = silu(groupNorm(a, 2));
    a = run_conv(*eRes2_, qRes2_, a, kScaleRes2, kInRes2, kOutRes2);
    const FloatTensor h1 = add(h0, a);

    // Self attention: stacked token matrices, per-slab attention.
    FloatTensor g = groupNorm(h1, 2);
    const FloatTensor qf = nchwToTokensBatch(run_conv(
        *eAttnQ_, qAttnQ_, g, kScaleAttnIn, kInAttnQ, kOutAttnQ));
    const FloatTensor kf = nchwToTokensBatch(run_conv(
        *eAttnK_, qAttnK_, g, kScaleAttnIn, kInAttnK, kOutAttnK));
    const FloatTensor vf = nchwToTokensBatch(run_conv(
        *eAttnV_, qAttnV_, g, kScaleAttnIn, kInAttnV, kOutAttnV));

    const QuantParams qpq{actScale_[kScaleAttnQ], 8};
    const QuantParams qpk{actScale_[kScaleAttnK], 8};
    Int8Tensor q_codes = quantize(qf, qpq);
    Int8Tensor k_codes = quantize(kf, qpk);
    Int32Tensor s_acc = attentionScoresBatch(
        q_codes, k_codes, bsz, prev_in(kInQkQ), prev_in(kInQkK),
        prev_out(kOutQk), primed, counts);
    if (use_ditto) {
        state->prevIn[kInQkQ] = std::move(q_codes);
        state->prevIn[kInQkK] = std::move(k_codes);
        state->prevOut[kOutQk] = std::move(s_acc);
    }
    const Int32Tensor &s_ref = use_ditto ? state->prevOut[kOutQk] : s_acc;
    FloatTensor s = dequantizeAccum(s_ref, qpq.scale * qpk.scale);
    s = affine(s, inv_sqrt_c, 0.0f);
    const FloatTensor prob = softmaxRows(s);

    const QuantParams qpp{actScale_[kScaleAttnP], 8};
    const QuantParams qpv{actScale_[kScaleAttnV], 8};
    Int8Tensor p_codes = quantize(prob, qpp);
    Int8Tensor v_codes = quantize(vf, qpv);
    Int32Tensor o_acc = attentionOutputBatch(
        p_codes, v_codes, bsz, prev_in(kInPvP), prev_in(kInPvV),
        prev_out(kOutPv), primed, counts);
    if (use_ditto) {
        state->prevIn[kInPvP] = std::move(p_codes);
        state->prevIn[kInPvV] = std::move(v_codes);
        state->prevOut[kOutPv] = std::move(o_acc);
    }
    const FloatTensor o = dequantizeAccum(
        use_ditto ? state->prevOut[kOutPv] : o_acc, qpp.scale * qpv.scale);

    const FloatTensor proj = run_conv(
        *eAttnProj_, qAttnProj_, tokensToNchwBatch(o, bsz, res, res),
        kScaleProj, kInProj, kOutProj);
    const FloatTensor h2 = add(h1, proj);

    // Cross attention: weight-stationary engines, batched.
    const FloatTensor tok = nchwToTokensBatch(h2);
    const FloatTensor q2 = run_fc(*eCrossQ_, qCrossQ_, tok, kScaleCrossIn,
                                  kInCrossQ, kOutCrossQ);
    const QuantParams qpq2{actScale_[kScaleCrossQ], 8};
    Int8Tensor q2_codes = quantize(q2, qpq2);
    Int32Tensor s2_acc =
        eCrossQk_->runBatch(q2_codes, bsz, prev_in(kInCrossQkQ),
                            prev_out(kOutCrossQk), primed, counts);
    if (use_ditto) {
        state->prevIn[kInCrossQkQ] = std::move(q2_codes);
        state->prevOut[kOutCrossQk] = std::move(s2_acc);
    }
    FloatTensor s2 = dequantizeAccum(
        use_ditto ? state->prevOut[kOutCrossQk] : s2_acc,
        qpq2.scale * qCrossKConst_.scale);
    s2 = affine(s2, inv_sqrt_c, 0.0f);
    const FloatTensor prob2 = softmaxRows(s2);

    const QuantParams qpp2{actScale_[kScaleCrossP], 8};
    Int8Tensor p2_codes = quantize(prob2, qpp2);
    Int32Tensor o2_acc =
        eCrossPv_->runBatch(p2_codes, bsz, prev_in(kInCrossPvP),
                            prev_out(kOutCrossPv), primed, counts);
    if (use_ditto) {
        state->prevIn[kInCrossPvP] = std::move(p2_codes);
        state->prevOut[kOutCrossPv] = std::move(o2_acc);
    }
    const FloatTensor o2 = dequantizeAccum(
        use_ditto ? state->prevOut[kOutCrossPv] : o2_acc,
        qpp2.scale * qCrossVConst_.scale);

    const FloatTensor co = run_fc(*eCrossOut_, qCrossOut_, o2, kScaleCrossO,
                                  kInCrossOut, kOutCrossOut);
    const FloatTensor h3 = add(h2, tokensToNchwBatch(co, bsz, res, res));

    FloatTensor out = silu(groupNorm(h3, 2));
    const FloatTensor eps = run_conv(*eConvOut_, qConvOut_, out,
                                     kScaleConvOut, kInConvOut,
                                     kOutConvOut);
    if (use_ditto)
        std::fill(state->primed.begin(), state->primed.end(), 1);
    return eps;
}

FloatTensor
HandWiredMiniUnet::forward(const FloatTensor &x, RunMode mode, DittoState *state,
                  OpCounts *counts) const
{
    switch (mode) {
      case RunMode::Fp32:
        return forwardFp32(x);
      case RunMode::QuantDirect:
        return forwardQuant(x, /*use_ditto=*/false, nullptr, nullptr);
      case RunMode::QuantDitto:
        return forwardQuant(x, /*use_ditto=*/true, state, counts);
      case RunMode::ApproxDitto:
        DITTO_FATAL("ApproxDitto is a graph-runtime mode; the "
                    "hand-wired parity reference only runs the exact "
                    "modes");
    }
    DITTO_PANIC("unknown RunMode");
}

FloatTensor
HandWiredMiniUnet::forwardBatch(const FloatTensor &x, RunMode mode,
                       BatchDittoState *state, OpCounts *counts) const
{
    switch (mode) {
      case RunMode::Fp32: {
        // FP32 has no quantized state to batch; run per slab (the
        // serving layer only batches the quantized modes).
        DITTO_ASSERT(x.shape().rank() == 4, "batched input must be NCHW");
        const int64_t bsz = x.shape()[0];
        const int64_t ch = x.shape()[1];
        const int64_t h = x.shape()[2];
        const int64_t w = x.shape()[3];
        FloatTensor out(x.shape());
        for (int64_t b = 0; b < bsz; ++b) {
            FloatTensor slab(Shape{1, ch, h, w});
            std::copy(x.data().begin() + b * ch * h * w,
                      x.data().begin() + (b + 1) * ch * h * w,
                      slab.data().begin());
            const FloatTensor eps = forwardFp32(slab);
            std::copy(eps.data().begin(), eps.data().end(),
                      out.data().begin() + b * ch * h * w);
        }
        return out;
      }
      case RunMode::QuantDirect:
        return forwardQuantBatch(x, /*use_ditto=*/false, nullptr, nullptr);
      case RunMode::QuantDitto:
        return forwardQuantBatch(x, /*use_ditto=*/true, state, counts);
      case RunMode::ApproxDitto:
        DITTO_FATAL("ApproxDitto is a graph-runtime mode; the "
                    "hand-wired parity reference only runs the exact "
                    "modes");
    }
    DITTO_PANIC("unknown RunMode");
}

namespace {

/** The fixed per-step MAC budget of one request (see rollout()). */
int64_t
macsPerStep(const MiniUnetConfig &cfg)
{
    const int64_t c = cfg.channels;
    const int64_t tokens = cfg.resolution * cfg.resolution;
    return c * cfg.inChannels * 9 * tokens +     // conv-in
           2 * c * c * 9 * tokens +              // res convs
           3 * c * c * tokens +                  // q/k/v
           2 * tokens * tokens * c +             // QK + PV
           c * c * tokens +                      // proj
           2 * c * c * tokens +                  // cross q / out
           2 * tokens * cfg.ctxTokens * c +      // cross QK + PV
           cfg.inChannels * c * 9 * tokens;      // conv-out
}

} // namespace

RolloutResult
HandWiredMiniUnet::rollout(RunMode mode) const
{
    return rollout(mode, noiseInit_);
}

RolloutResult
HandWiredMiniUnet::rollout(RunMode mode, const FloatTensor &noise, int steps) const
{
    DITTO_ASSERT(noise.shape() == noiseInit_.shape(),
                 "rollout noise shape mismatch");
    if (steps <= 0)
        steps = cfg_.steps;
    RolloutResult result;
    DittoState state;
    FloatTensor x = noise;
    for (int t = 0; t < steps; ++t) {
        const FloatTensor eps =
            forward(x, mode, &state, &result.dittoOps);
        x = add(x, affine(eps, -0.15f, 0.0f));
    }
    result.finalImage = std::move(x);
    result.totalMacsPerStep = macsPerStep(cfg_);
    return result;
}

FloatTensor
HandWiredMiniUnet::requestNoise(uint64_t seed) const
{
    // A distinct key stream from the weight/init RNG so request noise
    // never correlates with model parameters.
    Rng rng = Rng::fromKeys(seed, 0x5EED'D177);
    FloatTensor noise(noiseInit_.shape());
    noise.fillNormal(rng, 0.0, 1.0);
    return noise;
}

std::vector<RolloutResult>
HandWiredMiniUnet::rolloutBatch(RunMode mode,
                       std::span<const FloatTensor> noises) const
{
    const int64_t bsz = static_cast<int64_t>(noises.size());
    if (bsz == 0)
        return {};
    const int64_t slab = noiseInit_.numel();
    FloatTensor x(Shape{bsz, cfg_.inChannels, cfg_.resolution,
                        cfg_.resolution});
    for (int64_t b = 0; b < bsz; ++b) {
        DITTO_ASSERT(noises[b].shape() == noiseInit_.shape(),
                     "rolloutBatch noise shape mismatch");
        std::copy(noises[b].data().begin(), noises[b].data().end(),
                  x.data().begin() + b * slab);
    }

    BatchDittoState state;
    state.primed.assign(static_cast<size_t>(bsz), 0);
    std::vector<OpCounts> counts(static_cast<size_t>(bsz));
    for (int t = 0; t < cfg_.steps; ++t) {
        const FloatTensor eps = forwardBatch(x, mode, &state, counts.data());
        x = add(x, affine(eps, -0.15f, 0.0f));
    }

    std::vector<RolloutResult> results(static_cast<size_t>(bsz));
    for (int64_t b = 0; b < bsz; ++b) {
        RolloutResult &r = results[static_cast<size_t>(b)];
        r.finalImage = FloatTensor(noiseInit_.shape());
        std::copy(x.data().begin() + b * slab,
                  x.data().begin() + (b + 1) * slab,
                  r.finalImage.data().begin());
        r.dittoOps = counts[static_cast<size_t>(b)];
        r.totalMacsPerStep = macsPerStep(cfg_);
    }
    return results;
}

} // namespace ditto
