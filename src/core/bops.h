/**
 * @file
 * Bit-operations (BOPs) accounting (paper Section III-B, Fig. 6).
 *
 * BOPs weight each multiply by the product of its operand bit-widths:
 * an A8W8 multiply costs 64 BOPs, a 4-bit-difference multiply 32, and
 * a zero difference is skipped outright. For weight-stationary layers
 * one pass over the difference suffices; dynamic attention needs the
 * two sub-operations of the Section IV-A decomposition, each pairing a
 * full-bit-width operand with a narrow difference.
 */
#ifndef DITTO_CORE_BOPS_H
#define DITTO_CORE_BOPS_H

#include <cstdint>

#include "model/graph.h"
#include "trace/mixture.h"

namespace ditto {

/** Execution mode of a compute layer. */
enum class ExecMode
{
    Act,          //!< original quantized activations, full bit-width
    TemporalDiff, //!< differences between adjacent time steps
    SpatialDiff,  //!< differences between adjacent elements (Defo+)
};

/** Human-readable name of an ExecMode. */
const char *execModeName(ExecMode mode);

/**
 * Expected BOPs of one layer execution.
 *
 * @param layer the compute layer (macs, kind).
 * @param mode execution mode.
 * @param diff bit-class fractions of the difference operand used by
 *        `mode` (temporal or spatial; ignored for Act).
 */
double layerBops(const Layer &layer, ExecMode mode,
                 const BitFractions &diff);

/**
 * Expected multiplier-lane slots of one layer execution on a 4-bit PE
 * array: a 4-bit multiply occupies one lane-slot, an 8-bit operand two
 * (double multiplier + shift), zero differences none. Act mode on a
 * 4-bit array costs 2 slots per MAC.
 */
double layerLaneSlots(const Layer &layer, ExecMode mode,
                      const BitFractions &diff);

} // namespace ditto

#endif // DITTO_CORE_BOPS_H
