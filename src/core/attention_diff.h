/**
 * @file
 * Temporal difference processing for attention layers (Section IV-A).
 *
 * Attention matmuls multiply two *dynamic* operands, so the naive
 * expansion of Q_t K_t^T around the previous step's operands needs
 * three correction terms. The paper folds them into two:
 *
 *   Q_t K_t^T = Q_p K_p^T + Q_t dK^T + dQ K_p^T,
 *
 * where p is the previous step, dQ = Q_t - Q_p and dK = K_t - K_p
 * (because Q_p dK^T + dQ dK^T = Q_t dK^T). Each sub-operation pairs one
 * full-bit-width operand, treated as the "weight", with one narrow
 * difference operand — exactly the shape the Compute Unit handles. The
 * same identity applies to P x V.
 *
 * Cross attention is simpler: the context projections K' and V' do not
 * change across time steps, so Q' K'^T is an ordinary weight-stationary
 * layer with K' as the weight (and likewise P' V').
 *
 * All difference operands are executed through the sparse panel-plan
 * path (quant/encoder.h + the plan-driven ops.h entry points); the
 * dense two-term expansions live on under ditto::naive as parity
 * references.
 */
#ifndef DITTO_CORE_ATTENTION_DIFF_H
#define DITTO_CORE_ATTENTION_DIFF_H

#include "core/diff_linear.h"
#include "tensor/tensor.h"

namespace ditto {

/**
 * Direct score computation S = Q K^T (int8 operands, int32 scores).
 * Q:[tokens,d], K:[tokens,d].
 */
Int32Tensor attentionScoresDirect(const Int8Tensor &q, const Int8Tensor &k);

/**
 * Difference-processed scores:
 * S_t = prev_scores + Q_t dK^T + dQ K_prev^T.
 *
 * @param counts tallies the multiplies of both sub-operations by the
 *        bit class of their difference operand.
 * @param policy Auto reverts to direct execution (bit-identical) when
 *        the class-count probe predicts both sub-operations together
 *        cost more than one dense product — attention pays two
 *        difference sub-ops per matmul, so it needs roughly twice the
 *        sparsity a weight-stationary layer does.
 */
Int32Tensor attentionScoresDiff(const Int8Tensor &q,
                                const Int8Tensor &prev_q,
                                const Int8Tensor &k,
                                const Int8Tensor &prev_k,
                                const Int32Tensor &prev_scores,
                                OpCounts *counts = nullptr,
                                DiffPolicy policy = DiffPolicy::Auto);

/**
 * Batched difference-processed scores over `slabs` requests stacked
 * along the token dimension: q and k are [slabs * tokens, d], slab s
 * attends only within its own rows, and the result stacks the per-slab
 * score matrices as [slabs * tokens, tokens]. Per slab the decision
 * (direct when unprimed or the probe reverts, two-term sparse diff
 * otherwise) and the arithmetic match attentionScoresDiff /
 * attentionScoresDirect exactly — bitwise, at any thread count and
 * batch size. Unprimed slabs do not touch counts.
 *
 * @param counts per-slab tallies (array of `slabs`, or null).
 */
Int32Tensor attentionScoresBatch(const Int8Tensor &q, const Int8Tensor &k,
                                 int64_t slabs, const Int8Tensor *prev_q,
                                 const Int8Tensor *prev_k,
                                 const Int32Tensor *prev_scores,
                                 const uint8_t *primed,
                                 OpCounts *counts = nullptr,
                                 DiffPolicy policy = DiffPolicy::Auto);

/**
 * Difference-processed scores with per-operand payload hand-over (the
 * graph runtime's dynamic-attention counterpart of runDiffPre): each
 * operand arrives either with its producer's requantized code
 * difference `d*` (diff-calc bypassed — no previous codes were stored
 * for it) or with stored previous codes `prev_*` (exactly one of the
 * two per operand). The previous operand the two-term expansion
 * multiplies against is reconstructed as codes - d, which is exact in
 * the integer domain, so results, probes and Defo decisions are
 * bitwise identical to attentionScoresDiff on operands whose
 * subtraction equals the handed-over difference.
 */
Int32Tensor attentionScoresPre(const Int8Tensor &q, const Int16Tensor *dq,
                               const Int8Tensor *prev_q,
                               const Int8Tensor &k, const Int16Tensor *dk,
                               const Int8Tensor *prev_k,
                               const Int32Tensor &prev_scores,
                               OpCounts *counts = nullptr,
                               DiffPolicy policy = DiffPolicy::Auto);

/**
 * Batched attentionScoresPre over `slabs` stacked requests
 * (attentionScoresBatch semantics). Handed-over differences are
 * stacked like their codes; unprimed slabs' difference regions must
 * be zero (the payload emitters leave them zero-initialized) — the
 * reconstruction reads the whole tensor, so an unprimed slab's
 * "previous" codes come out equal to its current codes, and the
 * delegated batch body then never consumes them.
 */
Int32Tensor attentionScoresBatchPre(
    const Int8Tensor &q, const Int16Tensor *dq, const Int8Tensor *prev_q,
    const Int8Tensor &k, const Int16Tensor *dk, const Int8Tensor *prev_k,
    int64_t slabs, const Int32Tensor *prev_scores, const uint8_t *primed,
    OpCounts *counts = nullptr, DiffPolicy policy = DiffPolicy::Auto);

/** Direct weighted sum O = P V. P:[tokens,tokens], V:[tokens,d]. */
Int32Tensor attentionOutputDirect(const Int8Tensor &p, const Int8Tensor &v);

/**
 * Difference-processed weighted sum:
 * O_t = prev_out + P_t dV + dP V_prev.
 */
Int32Tensor attentionOutputDiff(const Int8Tensor &p,
                                const Int8Tensor &prev_p,
                                const Int8Tensor &v,
                                const Int8Tensor &prev_v,
                                const Int32Tensor &prev_out,
                                OpCounts *counts = nullptr,
                                DiffPolicy policy = DiffPolicy::Auto);

/**
 * Batched difference-processed weighted sum, the P x V counterpart of
 * attentionScoresBatch: p is [slabs * tokens, tokens], v is
 * [slabs * tokens, d], the result [slabs * tokens, d].
 */
Int32Tensor attentionOutputBatch(const Int8Tensor &p, const Int8Tensor &v,
                                 int64_t slabs, const Int8Tensor *prev_p,
                                 const Int8Tensor *prev_v,
                                 const Int32Tensor *prev_out,
                                 const uint8_t *primed,
                                 OpCounts *counts = nullptr,
                                 DiffPolicy policy = DiffPolicy::Auto);

/** attentionScoresPre for the weighted sum (P and V operands). */
Int32Tensor attentionOutputPre(const Int8Tensor &p, const Int16Tensor *dp,
                               const Int8Tensor *prev_p,
                               const Int8Tensor &v, const Int16Tensor *dv,
                               const Int8Tensor *prev_v,
                               const Int32Tensor &prev_out,
                               OpCounts *counts = nullptr,
                               DiffPolicy policy = DiffPolicy::Auto);

/** Batched attentionOutputPre (attentionOutputBatch semantics). */
Int32Tensor attentionOutputBatchPre(
    const Int8Tensor &p, const Int16Tensor *dp, const Int8Tensor *prev_p,
    const Int8Tensor &v, const Int16Tensor *dv, const Int8Tensor *prev_v,
    int64_t slabs, const Int32Tensor *prev_out, const uint8_t *primed,
    OpCounts *counts = nullptr, DiffPolicy policy = DiffPolicy::Auto);

/**
 * Cross-attention scores with a constant context projection:
 * S = Q' K'^T where K' never changes across steps. Difference
 * processing degenerates to the weight-stationary form
 * S_t = prev + dQ' K'^T.
 */
class CrossAttentionEngine
{
  public:
    /** @param k_const constant K' matrix [ctx_tokens, d]. */
    explicit CrossAttentionEngine(Int8Tensor k_const);

    Int32Tensor runDirect(const Int8Tensor &q) const;

    Int32Tensor runDiff(const Int8Tensor &q, const Int8Tensor &prev_q,
                        const Int32Tensor &prev_scores,
                        OpCounts *counts = nullptr,
                        DiffPolicy policy = DiffPolicy::Auto) const;

    /**
     * Difference execution with a caller-supplied query difference
     * (DiffFcEngine::runDiffPre semantics: the dependency analysis
     * bypassed difference calculation, the producer handed `d` over).
     */
    Int32Tensor runDiffPre(const Int8Tensor &q, const Int16Tensor &d,
                           const Int32Tensor &prev_scores,
                           OpCounts *counts = nullptr,
                           DiffPolicy policy = DiffPolicy::Auto) const;

    /**
     * Batched execution over `slabs` requests stacked along the query
     * row dimension (DiffFcEngine::runBatch semantics: per-slab
     * decisions, folded direct runs, one batched plan dispatch;
     * bitwise identical to per-request calls).
     */
    Int32Tensor runBatch(const Int8Tensor &q, int64_t slabs,
                         const Int8Tensor *prev_q,
                         const Int32Tensor *prev_scores,
                         const uint8_t *primed, OpCounts *counts = nullptr,
                         DiffPolicy policy = DiffPolicy::Auto) const;

    /** runBatch with a caller-supplied stacked query difference. */
    Int32Tensor runBatchPre(const Int8Tensor &q, const Int16Tensor &d,
                            int64_t slabs, const Int32Tensor *prev_scores,
                            const uint8_t *primed,
                            OpCounts *counts = nullptr,
                            DiffPolicy policy = DiffPolicy::Auto) const;

  private:
    Int8Tensor kConst_;
    Int8Tensor kConstT_; //!< [d, ctx] copy: plan B operand
};

namespace naive {

/**
 * Dense difference references: the scalar two-term expansions the
 * sparse plan-driven paths above are parity-tested against.
 */
Int32Tensor attentionScoresDiff(const Int8Tensor &q,
                                const Int8Tensor &prev_q,
                                const Int8Tensor &k,
                                const Int8Tensor &prev_k,
                                const Int32Tensor &prev_scores,
                                OpCounts *counts = nullptr);
Int32Tensor attentionOutputDiff(const Int8Tensor &p,
                                const Int8Tensor &prev_p,
                                const Int8Tensor &v,
                                const Int8Tensor &prev_v,
                                const Int32Tensor &prev_out,
                                OpCounts *counts = nullptr);
Int32Tensor crossAttentionScoresDiff(const Int8Tensor &q,
                                     const Int8Tensor &prev_q,
                                     const Int8Tensor &k_const,
                                     const Int32Tensor &prev_scores,
                                     OpCounts *counts = nullptr);

} // namespace naive

} // namespace ditto

#endif // DITTO_CORE_ATTENTION_DIFF_H
