/**
 * @file
 * Attention difference processing implementation.
 *
 * Each of the two correction terms pairs one full-bit-width operand
 * with one narrow difference operand; the difference operand is
 * encoded into a sparse panel plan and executed by the plan-driven
 * diff GEMM. Terms whose sparse operand sits on the right of the
 * product are computed transposed — (X dY^T)^T = dY X^T — so the plan
 * operand is always the left factor, then folded back with a fused
 * transpose-add. The scalar two-term expansions are retained under
 * naive:: as parity references.
 */
#include "core/attention_diff.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"
#include "quant/encoder.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace ditto {

Int32Tensor
attentionScoresDirect(const Int8Tensor &q, const Int8Tensor &k)
{
    return matmulTransposedInt8(q, k);
}

Int32Tensor
attentionScoresDiff(const Int8Tensor &q, const Int8Tensor &prev_q,
                    const Int8Tensor &k, const Int8Tensor &prev_k,
                    const Int32Tensor &prev_scores, OpCounts *counts,
                    DiffPolicy policy)
{
    DITTO_ASSERT(q.shape() == prev_q.shape() && k.shape() == prev_k.shape(),
                 "attention diff operand shape mismatch");
    const int64_t tokens = q.shape()[0];
    const int64_t ctx = k.shape()[0];
    const int64_t d = q.shape()[1];
    DITTO_ASSERT(prev_scores.shape() == Shape({tokens, ctx}),
                 "previous scores shape mismatch");
    // Sub-op 1: Q_t dK^T — dK elements each multiply `tokens` rows of
    // Q. Sub-op 2: dQ K_prev^T — dQ elements each multiply `ctx` rows
    // of K.
    const DiffClassCounts probe_dq = countTemporalDiffClasses(q, prev_q);
    const DiffClassCounts probe_dk = countTemporalDiffClasses(k, prev_k);
    if (counts) {
        counts->merge(probeOpCounts(probe_dk, tokens));
        counts->merge(probeOpCounts(probe_dq, ctx));
    }
    // Two sub-ops against one dense product: revert unless the
    // combined predicted sparse cost undercuts Q_t K_t^T.
    const double predicted =
        diffMacPenalty(tokens) * static_cast<double>(probe_dk.nonzero()) *
            static_cast<double>(tokens) +
        diffMacPenalty(ctx) * static_cast<double>(probe_dq.nonzero()) *
            static_cast<double>(ctx);
    if (policy == DiffPolicy::Auto &&
        predicted >= static_cast<double>(tokens * ctx * d))
        return attentionScoresDirect(q, k);
    // S_t = prev + dQ K_prev^T + (dK Q_t^T)^T.
    const DiffGemmPlan plan_dq = encodeTemporalDiff(q, prev_q);
    const DiffGemmPlan plan_dk = encodeTemporalDiff(k, prev_k);
    Int32Tensor partial =
        matmulTransposedDiffPlan(plan_dq, prev_k, &prev_scores);
    const Int32Tensor qdk_t = matmulTransposedDiffPlan(plan_dk, q);
    return addTransposedInt32(partial, qdk_t);
}

Int32Tensor
attentionScoresBatch(const Int8Tensor &q, const Int8Tensor &k,
                     int64_t slabs, const Int8Tensor *prev_q,
                     const Int8Tensor *prev_k,
                     const Int32Tensor *prev_scores, const uint8_t *primed,
                     OpCounts *counts, DiffPolicy policy)
{
    DITTO_ASSERT(q.shape().rank() == 2 && q.shape() == k.shape() &&
                 slabs > 0 && q.shape()[0] % slabs == 0,
                 "batched attention operands must stack equal slabs");
    const int64_t tokens = q.shape()[0] / slabs;
    const int64_t d = q.shape()[1];
    const int64_t in_elems = tokens * d;
    const int64_t out_elems = tokens * tokens;
    const int8_t *qd = q.data().data();
    const int8_t *kd = k.data().data();

    // Per-slab decisions, identical to attentionScoresDiff's.
    std::vector<uint8_t> use_diff(static_cast<size_t>(slabs), 0);
    bool any_diff = false;
    for (int64_t s = 0; s < slabs; ++s) {
        if (!primed || !primed[s])
            continue;
        DITTO_ASSERT(prev_q && prev_k && prev_scores,
                     "primed slabs need previous state");
        DITTO_ASSERT(prev_q->shape() == q.shape() &&
                     prev_k->shape() == k.shape() &&
                     prev_scores->shape() ==
                         Shape({slabs * tokens, tokens}),
                     "batched attention previous state shape mismatch");
        const DiffClassCounts probe_dq =
            countTemporalDiffClasses(q, *prev_q, s * in_elems, in_elems);
        const DiffClassCounts probe_dk =
            countTemporalDiffClasses(k, *prev_k, s * in_elems, in_elems);
        if (counts) {
            counts[s].merge(probeOpCounts(probe_dk, tokens));
            counts[s].merge(probeOpCounts(probe_dq, tokens));
        }
        const double predicted =
            diffMacPenalty(tokens) *
                static_cast<double>(probe_dk.nonzero()) *
                static_cast<double>(tokens) +
            diffMacPenalty(tokens) *
                static_cast<double>(probe_dq.nonzero()) *
                static_cast<double>(tokens);
        use_diff[s] =
            policy == DiffPolicy::ForceDiff ||
            predicted < static_cast<double>(tokens * tokens * d);
        any_diff |= use_diff[s] != 0;
    }

    Int32Tensor out(Shape{slabs * tokens, tokens});
    int32_t *od = out.data().data();
    for (int64_t s = 0; s < slabs; ++s) {
        if (use_diff[s])
            continue;
        // Direct slabs: each attends within its own rows, so the K
        // operand differs per slab and runs stay per-slab GEMMs.
        kernels::gemmInt8Into(qd + s * in_elems, tokens, d,
                              kd + s * in_elems, tokens, /*trans_b=*/true,
                              od + s * out_elems);
    }
    if (!any_diff)
        return out;

    // Diff slabs: S_t = prev + dQ K_prev^T + (dK Q_t^T)^T, every term
    // batched into one dispatch across slabs.
    std::vector<DiffGemmPlan> plans_dq;
    std::vector<DiffGemmPlan> plans_dk;
    plans_dq.reserve(static_cast<size_t>(slabs));
    plans_dk.reserve(static_cast<size_t>(slabs));
    std::vector<kernels::DiffGemmBatchItem> items_a, items_b;
    std::vector<int64_t> diff_slabs;
    int64_t n_diff = 0;
    for (int64_t s = 0; s < slabs; ++s)
        n_diff += use_diff[s] ? 1 : 0;
    Int32Tensor scratch(Shape{n_diff * tokens, tokens});
    int32_t *sd = scratch.data().data();
    int64_t di = 0;
    for (int64_t s = 0; s < slabs; ++s) {
        if (!use_diff[s])
            continue;
        std::memcpy(od + s * out_elems,
                    prev_scores->data().data() + s * out_elems,
                    static_cast<size_t>(out_elems) * sizeof(int32_t));
        plans_dq.push_back(encodeTemporalDiffRegion(q, *prev_q,
                                                    s * in_elems, tokens,
                                                    d));
        plans_dk.push_back(encodeTemporalDiffRegion(k, *prev_k,
                                                    s * in_elems, tokens,
                                                    d));
        items_a.push_back({&plans_dq.back(),
                           prev_k->data().data() + s * in_elems,
                           od + s * out_elems});
        items_b.push_back({&plans_dk.back(), qd + s * in_elems,
                           sd + di * out_elems});
        diff_slabs.push_back(s);
        ++di;
    }
    kernels::diffGemmBatch(items_a, tokens, /*transpose_b=*/true);
    kernels::diffGemmBatch(items_b, tokens, /*transpose_b=*/true);
    parallelFor(0, n_diff, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i)
            kernels::addTransposedInt32InPlace(
                od + diff_slabs[static_cast<size_t>(i)] * out_elems,
                sd + i * out_elems, tokens, tokens);
    });
    return out;
}

namespace {

/**
 * Reconstruct an operand's previous-step codes from a handed-over
 * payload: prev = codes - d. Both sides of the subtraction are valid
 * symmetric int8 codes, so the int16 difference of codes always lands
 * back in int8 range — the reconstruction is exact, which is what
 * makes delegation to the stored-codes bodies bitwise neutral.
 */
Int8Tensor
reconstructPrev(const Int8Tensor &codes, const Int16Tensor &d)
{
    DITTO_ASSERT(d.shape() == codes.shape(),
                 "payload difference shape mismatch");
    Int8Tensor prev(codes.shape());
    auto sc = codes.data();
    auto sd = d.data();
    auto sp = prev.data();
    for (size_t i = 0; i < sc.size(); ++i)
        sp[i] = static_cast<int8_t>(static_cast<int16_t>(sc[i]) - sd[i]);
    return prev;
}

/** One operand's previous codes: reconstructed or stored. */
const Int8Tensor &
operandPrev(const Int8Tensor &codes, const Int16Tensor *d,
            const Int8Tensor *stored, Int8Tensor *scratch)
{
    DITTO_ASSERT((d != nullptr) != (stored != nullptr),
                 "exactly one of payload difference and stored codes");
    if (stored)
        return *stored;
    *scratch = reconstructPrev(codes, *d);
    return *scratch;
}

} // namespace

Int32Tensor
attentionScoresPre(const Int8Tensor &q, const Int16Tensor *dq,
                   const Int8Tensor *prev_q, const Int8Tensor &k,
                   const Int16Tensor *dk, const Int8Tensor *prev_k,
                   const Int32Tensor &prev_scores, OpCounts *counts,
                   DiffPolicy policy)
{
    Int8Tensor qs, ks;
    const Int8Tensor &pq = operandPrev(q, dq, prev_q, &qs);
    const Int8Tensor &pk = operandPrev(k, dk, prev_k, &ks);
    return attentionScoresDiff(q, pq, k, pk, prev_scores, counts, policy);
}

Int32Tensor
attentionScoresBatchPre(const Int8Tensor &q, const Int16Tensor *dq,
                        const Int8Tensor *prev_q, const Int8Tensor &k,
                        const Int16Tensor *dk, const Int8Tensor *prev_k,
                        int64_t slabs, const Int32Tensor *prev_scores,
                        const uint8_t *primed, OpCounts *counts,
                        DiffPolicy policy)
{
    Int8Tensor qs, ks;
    const Int8Tensor &pq = operandPrev(q, dq, prev_q, &qs);
    const Int8Tensor &pk = operandPrev(k, dk, prev_k, &ks);
    return attentionScoresBatch(q, k, slabs, &pq, &pk, prev_scores,
                                primed, counts, policy);
}

Int32Tensor
attentionOutputDirect(const Int8Tensor &p, const Int8Tensor &v)
{
    return matmulInt8(p, v);
}

Int32Tensor
attentionOutputPre(const Int8Tensor &p, const Int16Tensor *dp,
                   const Int8Tensor *prev_p, const Int8Tensor &v,
                   const Int16Tensor *dv, const Int8Tensor *prev_v,
                   const Int32Tensor &prev_out, OpCounts *counts,
                   DiffPolicy policy)
{
    Int8Tensor ps, vs;
    const Int8Tensor &pp = operandPrev(p, dp, prev_p, &ps);
    const Int8Tensor &pv = operandPrev(v, dv, prev_v, &vs);
    return attentionOutputDiff(p, pp, v, pv, prev_out, counts, policy);
}

Int32Tensor
attentionOutputBatchPre(const Int8Tensor &p, const Int16Tensor *dp,
                        const Int8Tensor *prev_p, const Int8Tensor &v,
                        const Int16Tensor *dv, const Int8Tensor *prev_v,
                        int64_t slabs, const Int32Tensor *prev_out,
                        const uint8_t *primed, OpCounts *counts,
                        DiffPolicy policy)
{
    Int8Tensor ps, vs;
    const Int8Tensor &pp = operandPrev(p, dp, prev_p, &ps);
    const Int8Tensor &pv = operandPrev(v, dv, prev_v, &vs);
    return attentionOutputBatch(p, v, slabs, &pp, &pv, prev_out, primed,
                                counts, policy);
}

Int32Tensor
attentionOutputDiff(const Int8Tensor &p, const Int8Tensor &prev_p,
                    const Int8Tensor &v, const Int8Tensor &prev_v,
                    const Int32Tensor &prev_out, OpCounts *counts,
                    DiffPolicy policy)
{
    DITTO_ASSERT(p.shape() == prev_p.shape() && v.shape() == prev_v.shape(),
                 "attention diff operand shape mismatch");
    const int64_t rows = p.shape()[0];
    const int64_t inner = p.shape()[1];
    const int64_t d = v.shape()[1];
    DITTO_ASSERT(v.shape()[0] == inner, "P/V inner dimension mismatch");
    DITTO_ASSERT(prev_out.shape() == Shape({rows, d}),
                 "previous output shape mismatch");
    const DiffClassCounts probe_dp = countTemporalDiffClasses(p, prev_p);
    const DiffClassCounts probe_dv = countTemporalDiffClasses(v, prev_v);
    if (counts) {
        counts->merge(probeOpCounts(probe_dv, rows));
        counts->merge(probeOpCounts(probe_dp, d));
    }
    const double predicted =
        diffMacPenalty(rows) * static_cast<double>(probe_dv.nonzero()) *
            static_cast<double>(rows) +
        diffMacPenalty(d) * static_cast<double>(probe_dp.nonzero()) *
            static_cast<double>(d);
    if (policy == DiffPolicy::Auto &&
        predicted >= static_cast<double>(rows * inner * d))
        return attentionOutputDirect(p, v);
    // O_t = prev + dP V_prev + (dV^T P_t^T)^T.
    const DiffGemmPlan plan_dp = encodeTemporalDiff(p, prev_p);
    const DiffGemmPlan plan_dvt = encodeTemporalDiffTransposed(v, prev_v);
    Int32Tensor partial = matmulDiffPlan(plan_dp, prev_v, &prev_out);
    const Int32Tensor pdv_t = matmulTransposedDiffPlan(plan_dvt, p);
    return addTransposedInt32(partial, pdv_t);
}

Int32Tensor
attentionOutputBatch(const Int8Tensor &p, const Int8Tensor &v,
                     int64_t slabs, const Int8Tensor *prev_p,
                     const Int8Tensor *prev_v, const Int32Tensor *prev_out,
                     const uint8_t *primed, OpCounts *counts,
                     DiffPolicy policy)
{
    DITTO_ASSERT(p.shape().rank() == 2 && v.shape().rank() == 2 &&
                 slabs > 0 && p.shape()[0] % slabs == 0 &&
                 v.shape()[0] % slabs == 0,
                 "batched attention operands must stack equal slabs");
    const int64_t rows = p.shape()[0] / slabs;
    const int64_t inner = p.shape()[1];
    const int64_t d = v.shape()[1];
    DITTO_ASSERT(v.shape()[0] / slabs == inner,
                 "P/V inner dimension mismatch");
    const int64_t p_elems = rows * inner;
    const int64_t v_elems = inner * d;
    const int64_t out_elems = rows * d;
    const int8_t *pd = p.data().data();
    const int8_t *vd = v.data().data();

    // Per-slab decisions, identical to attentionOutputDiff's.
    std::vector<uint8_t> use_diff(static_cast<size_t>(slabs), 0);
    bool any_diff = false;
    for (int64_t s = 0; s < slabs; ++s) {
        if (!primed || !primed[s])
            continue;
        DITTO_ASSERT(prev_p && prev_v && prev_out,
                     "primed slabs need previous state");
        DITTO_ASSERT(prev_p->shape() == p.shape() &&
                     prev_v->shape() == v.shape() &&
                     prev_out->shape() == Shape({slabs * rows, d}),
                     "batched attention previous state shape mismatch");
        const DiffClassCounts probe_dp =
            countTemporalDiffClasses(p, *prev_p, s * p_elems, p_elems);
        const DiffClassCounts probe_dv =
            countTemporalDiffClasses(v, *prev_v, s * v_elems, v_elems);
        if (counts) {
            counts[s].merge(probeOpCounts(probe_dv, rows));
            counts[s].merge(probeOpCounts(probe_dp, d));
        }
        const double predicted =
            diffMacPenalty(rows) *
                static_cast<double>(probe_dv.nonzero()) *
                static_cast<double>(rows) +
            diffMacPenalty(d) * static_cast<double>(probe_dp.nonzero()) *
                static_cast<double>(d);
        use_diff[s] = policy == DiffPolicy::ForceDiff ||
                      predicted < static_cast<double>(rows * inner * d);
        any_diff |= use_diff[s] != 0;
    }

    Int32Tensor out(Shape{slabs * rows, d});
    int32_t *od = out.data().data();
    for (int64_t s = 0; s < slabs; ++s) {
        if (use_diff[s])
            continue;
        kernels::gemmInt8Into(pd + s * p_elems, rows, inner,
                              vd + s * v_elems, d, /*trans_b=*/false,
                              od + s * out_elems);
    }
    if (!any_diff)
        return out;

    // Diff slabs: O_t = prev + dP V_prev + (dV^T P_t^T)^T, batched.
    std::vector<DiffGemmPlan> plans_dp;
    std::vector<DiffGemmPlan> plans_dvt;
    plans_dp.reserve(static_cast<size_t>(slabs));
    plans_dvt.reserve(static_cast<size_t>(slabs));
    std::vector<kernels::DiffGemmBatchItem> items_a, items_b;
    std::vector<int64_t> diff_slabs;
    int64_t n_diff = 0;
    for (int64_t s = 0; s < slabs; ++s)
        n_diff += use_diff[s] ? 1 : 0;
    Int32Tensor scratch(Shape{n_diff * d, rows});
    int32_t *sd = scratch.data().data();
    int64_t di = 0;
    for (int64_t s = 0; s < slabs; ++s) {
        if (!use_diff[s])
            continue;
        std::memcpy(od + s * out_elems,
                    prev_out->data().data() + s * out_elems,
                    static_cast<size_t>(out_elems) * sizeof(int32_t));
        plans_dp.push_back(encodeTemporalDiffRegion(p, *prev_p,
                                                    s * p_elems, rows,
                                                    inner));
        plans_dvt.push_back(encodeTemporalDiffRegionTransposed(
            v, *prev_v, s * v_elems, inner, d));
        items_a.push_back({&plans_dp.back(),
                           prev_v->data().data() + s * v_elems,
                           od + s * out_elems});
        items_b.push_back({&plans_dvt.back(), pd + s * p_elems,
                           sd + di * d * rows});
        diff_slabs.push_back(s);
        ++di;
    }
    kernels::diffGemmBatch(items_a, d, /*transpose_b=*/false);
    kernels::diffGemmBatch(items_b, rows, /*transpose_b=*/true);
    parallelFor(0, n_diff, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i)
            kernels::addTransposedInt32InPlace(
                od + diff_slabs[static_cast<size_t>(i)] * out_elems,
                sd + i * d * rows, rows, d);
    });
    return out;
}

CrossAttentionEngine::CrossAttentionEngine(Int8Tensor k_const)
    : kConst_(std::move(k_const))
{
    DITTO_ASSERT(kConst_.shape().rank() == 2,
                 "context operand must be a matrix");
    kConstT_ = transposeInt8(kConst_);
}

Int32Tensor
CrossAttentionEngine::runDirect(const Int8Tensor &q) const
{
    return matmulTransposedInt8(q, kConst_);
}

Int32Tensor
CrossAttentionEngine::runDiff(const Int8Tensor &q, const Int8Tensor &prev_q,
                              const Int32Tensor &prev_scores,
                              OpCounts *counts, DiffPolicy policy) const
{
    DITTO_ASSERT(q.shape() == prev_q.shape(),
                 "cross attention diff shape mismatch");
    const int64_t ctx = kConst_.shape()[0];
    const DiffClassCounts probe = countTemporalDiffClasses(q, prev_q);
    if (counts)
        counts->merge(probeOpCounts(probe, ctx));
    if (policy == DiffPolicy::Auto && !diffWorthIt(probe, ctx))
        return runDirect(q);
    const DiffGemmPlan plan = encodeTemporalDiff(q, prev_q);
    return matmulDiffPlan(plan, kConstT_, &prev_scores);
}

Int32Tensor
CrossAttentionEngine::runDiffPre(const Int8Tensor &q, const Int16Tensor &d,
                                 const Int32Tensor &prev_scores,
                                 OpCounts *counts, DiffPolicy policy) const
{
    DITTO_ASSERT(d.shape() == q.shape(),
                 "cross attention pre-diff shape mismatch");
    const int64_t ctx = kConst_.shape()[0];
    const DiffClassCounts probe = countDiffClasses(d);
    if (counts)
        counts->merge(probeOpCounts(probe, ctx));
    if (policy == DiffPolicy::Auto && !diffWorthIt(probe, ctx))
        return runDirect(q);
    const DiffGemmPlan plan = encodeDiff(d);
    return matmulDiffPlan(plan, kConstT_, &prev_scores);
}

Int32Tensor
CrossAttentionEngine::runBatch(const Int8Tensor &q, int64_t slabs,
                               const Int8Tensor *prev_q,
                               const Int32Tensor *prev_scores,
                               const uint8_t *primed, OpCounts *counts,
                               DiffPolicy policy) const
{
    return detail::runBatchWeightStationary(q, slabs, prev_q, prev_scores,
                                            primed, counts, policy,
                                            kConst_, kConstT_);
}

Int32Tensor
CrossAttentionEngine::runBatchPre(const Int8Tensor &q, const Int16Tensor &d,
                                  int64_t slabs,
                                  const Int32Tensor *prev_scores,
                                  const uint8_t *primed, OpCounts *counts,
                                  DiffPolicy policy) const
{
    return detail::runBatchWeightStationaryPre(q, d, slabs, prev_scores,
                                               primed, counts, policy,
                                               kConst_, kConstT_);
}

namespace naive {

Int32Tensor
attentionScoresDiff(const Int8Tensor &q, const Int8Tensor &prev_q,
                    const Int8Tensor &k, const Int8Tensor &prev_k,
                    const Int32Tensor &prev_scores, OpCounts *counts)
{
    DITTO_ASSERT(q.shape() == prev_q.shape() && k.shape() == prev_k.shape(),
                 "attention diff operand shape mismatch");
    const Int16Tensor dq = subtractInt8(q, prev_q);
    const Int16Tensor dk = subtractInt8(k, prev_k);
    if (counts) {
        counts->merge(tallyOps(dk, q.shape()[0]));
        counts->merge(tallyOps(dq, k.shape()[0]));
    }
    // S_t = prev + Q_t dK^T + dQ K_prev^T.
    const int64_t tokens = q.shape()[0];
    const int64_t ctx = k.shape()[0];
    const int64_t d = q.shape()[1];
    Int32Tensor out(prev_scores.shape());
    DITTO_ASSERT(prev_scores.shape() == Shape({tokens, ctx}),
                 "previous scores shape mismatch");
    for (int64_t i = 0; i < tokens; ++i) {
        for (int64_t j = 0; j < ctx; ++j) {
            int64_t acc = 0;
            for (int64_t x = 0; x < d; ++x) {
                acc += static_cast<int64_t>(q.at(i, x)) * dk.at(j, x);
                acc += static_cast<int64_t>(dq.at(i, x)) *
                       prev_k.at(j, x);
            }
            out.at(i, j) = prev_scores.at(i, j) +
                           static_cast<int32_t>(acc);
        }
    }
    return out;
}

Int32Tensor
attentionOutputDiff(const Int8Tensor &p, const Int8Tensor &prev_p,
                    const Int8Tensor &v, const Int8Tensor &prev_v,
                    const Int32Tensor &prev_out, OpCounts *counts)
{
    DITTO_ASSERT(p.shape() == prev_p.shape() && v.shape() == prev_v.shape(),
                 "attention diff operand shape mismatch");
    const Int16Tensor dp = subtractInt8(p, prev_p);
    const Int16Tensor dv = subtractInt8(v, prev_v);
    if (counts) {
        counts->merge(tallyOps(dv, p.shape()[0]));
        counts->merge(tallyOps(dp, v.shape()[1]));
    }
    // O_t = prev + P_t dV + dP V_prev.
    const int64_t rows = p.shape()[0];
    const int64_t inner = p.shape()[1];
    const int64_t d = v.shape()[1];
    DITTO_ASSERT(v.shape()[0] == inner, "P/V inner dimension mismatch");
    DITTO_ASSERT(prev_out.shape() == Shape({rows, d}),
                 "previous output shape mismatch");
    Int32Tensor out(prev_out.shape());
    for (int64_t i = 0; i < rows; ++i) {
        for (int64_t j = 0; j < d; ++j) {
            int64_t acc = 0;
            for (int64_t x = 0; x < inner; ++x) {
                acc += static_cast<int64_t>(p.at(i, x)) * dv.at(x, j);
                acc += static_cast<int64_t>(dp.at(i, x)) *
                       prev_v.at(x, j);
            }
            out.at(i, j) = prev_out.at(i, j) + static_cast<int32_t>(acc);
        }
    }
    return out;
}

Int32Tensor
crossAttentionScoresDiff(const Int8Tensor &q, const Int8Tensor &prev_q,
                         const Int8Tensor &k_const,
                         const Int32Tensor &prev_scores, OpCounts *counts)
{
    DITTO_ASSERT(q.shape() == prev_q.shape(),
                 "cross attention diff shape mismatch");
    const Int16Tensor dq = subtractInt8(q, prev_q);
    if (counts)
        counts->merge(tallyOps(dq, k_const.shape()[0]));
    const Int32Tensor delta = ditto::matmulTransposedDiffInt16(dq, k_const);
    return addInt32(prev_scores, delta);
}

} // namespace naive

} // namespace ditto
