/**
 * @file
 * Attention difference processing implementation.
 */
#include "core/attention_diff.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace ditto {

Int32Tensor
attentionScoresDirect(const Int8Tensor &q, const Int8Tensor &k)
{
    return matmulTransposedInt8(q, k);
}

Int32Tensor
attentionScoresDiff(const Int8Tensor &q, const Int8Tensor &prev_q,
                    const Int8Tensor &k, const Int8Tensor &prev_k,
                    const Int32Tensor &prev_scores, OpCounts *counts)
{
    DITTO_ASSERT(q.shape() == prev_q.shape() && k.shape() == prev_k.shape(),
                 "attention diff operand shape mismatch");
    const Int16Tensor dq = subtractInt8(q, prev_q);
    const Int16Tensor dk = subtractInt8(k, prev_k);
    if (counts) {
        // Sub-op 1: Q_t dK^T — dK elements each multiply `tokens` rows
        // of Q. Sub-op 2: dQ K_prev^T — dQ elements each multiply
        // `tokens` rows of K.
        counts->merge(tallyOps(dk, q.shape()[0]));
        counts->merge(tallyOps(dq, k.shape()[0]));
    }
    // S_t = prev + Q_t dK^T + dQ K_prev^T.
    const int64_t tokens = q.shape()[0];
    const int64_t ctx = k.shape()[0];
    const int64_t d = q.shape()[1];
    Int32Tensor out(prev_scores.shape());
    DITTO_ASSERT(prev_scores.shape() == Shape({tokens, ctx}),
                 "previous scores shape mismatch");
    for (int64_t i = 0; i < tokens; ++i) {
        for (int64_t j = 0; j < ctx; ++j) {
            int64_t acc = 0;
            for (int64_t x = 0; x < d; ++x) {
                acc += static_cast<int64_t>(q.at(i, x)) * dk.at(j, x);
                acc += static_cast<int64_t>(dq.at(i, x)) *
                       prev_k.at(j, x);
            }
            out.at(i, j) = prev_scores.at(i, j) +
                           static_cast<int32_t>(acc);
        }
    }
    return out;
}

Int32Tensor
attentionOutputDirect(const Int8Tensor &p, const Int8Tensor &v)
{
    return matmulInt8(p, v);
}

Int32Tensor
attentionOutputDiff(const Int8Tensor &p, const Int8Tensor &prev_p,
                    const Int8Tensor &v, const Int8Tensor &prev_v,
                    const Int32Tensor &prev_out, OpCounts *counts)
{
    DITTO_ASSERT(p.shape() == prev_p.shape() && v.shape() == prev_v.shape(),
                 "attention diff operand shape mismatch");
    const Int16Tensor dp = subtractInt8(p, prev_p);
    const Int16Tensor dv = subtractInt8(v, prev_v);
    if (counts) {
        counts->merge(tallyOps(dv, p.shape()[0]));
        counts->merge(tallyOps(dp, v.shape()[1]));
    }
    // O_t = prev + P_t dV + dP V_prev.
    const int64_t rows = p.shape()[0];
    const int64_t inner = p.shape()[1];
    const int64_t d = v.shape()[1];
    DITTO_ASSERT(v.shape()[0] == inner, "P/V inner dimension mismatch");
    DITTO_ASSERT(prev_out.shape() == Shape({rows, d}),
                 "previous output shape mismatch");
    Int32Tensor out(prev_out.shape());
    for (int64_t i = 0; i < rows; ++i) {
        for (int64_t j = 0; j < d; ++j) {
            int64_t acc = 0;
            for (int64_t x = 0; x < inner; ++x) {
                acc += static_cast<int64_t>(p.at(i, x)) * dv.at(x, j);
                acc += static_cast<int64_t>(dp.at(i, x)) *
                       prev_v.at(x, j);
            }
            out.at(i, j) = prev_out.at(i, j) + static_cast<int32_t>(acc);
        }
    }
    return out;
}

CrossAttentionEngine::CrossAttentionEngine(Int8Tensor k_const)
    : kConst_(std::move(k_const))
{
    DITTO_ASSERT(kConst_.shape().rank() == 2,
                 "context operand must be a matrix");
}

Int32Tensor
CrossAttentionEngine::runDirect(const Int8Tensor &q) const
{
    return matmulTransposedInt8(q, kConst_);
}

Int32Tensor
CrossAttentionEngine::runDiff(const Int8Tensor &q, const Int8Tensor &prev_q,
                              const Int32Tensor &prev_scores,
                              OpCounts *counts) const
{
    DITTO_ASSERT(q.shape() == prev_q.shape(),
                 "cross attention diff shape mismatch");
    const Int16Tensor dq = subtractInt8(q, prev_q);
    if (counts)
        counts->merge(tallyOps(dq, kConst_.shape()[0]));
    const Int32Tensor delta = matmulTransposedDiffInt16(dq, kConst_);
    return addInt32(prev_scores, delta);
}

} // namespace ditto
