/**
 * @file
 * Sparse difference-GEMM execution.
 *
 * The kernel is an axpy formulation: for each output row, a strip of
 * kDiffNc int32 accumulators is held in registers while the row's
 * panels stream past in K order; every nonzero entry contributes
 * acc[j] += v * B[k, n0 + j] over the contiguous B row segment, which
 * the compiler vectorizes. Dense GEMM cost is m*k*n multiply-adds; this
 * path pays nonzero(k)*n, so wall-clock shrinks with the zero fraction.
 */
#include "tensor/diff_gemm.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"
#include "tensor/ops.h"
#include "tensor/simd/simd.h"

#define DITTO_RESTRICT __restrict__

namespace ditto {
namespace kernels {

namespace {

/** Tile edge for the blocked de-transpose of B. */
constexpr int64_t kTransposeTile = 32;

/** dst[c, r] = src[r, c] for src:[rows, cols], tiled for locality. */
void
transposeInt8Into(const int8_t *DITTO_RESTRICT src, int64_t rows,
                  int64_t cols, int8_t *DITTO_RESTRICT dst)
{
    const int64_t rtiles = (rows + kTransposeTile - 1) / kTransposeTile;
    parallelFor(0, rtiles, [&](int64_t lo, int64_t hi) {
        for (int64_t rt = lo; rt < hi; ++rt) {
            const int64_t r0 = rt * kTransposeTile;
            const int64_t r1 = std::min(rows, r0 + kTransposeTile);
            for (int64_t c0 = 0; c0 < cols; c0 += kTransposeTile) {
                const int64_t c1 = std::min(cols, c0 + kTransposeTile);
                for (int64_t r = r0; r < r1; ++r)
                    for (int64_t c = c0; c < c1; ++c)
                        dst[c * rows + r] = src[r * cols + c];
            }
        }
    });
}

/**
 * Two entries fused: crow[j] += v0*b0[j] + v1*b1[j]. Halves the
 * output-row read-modify-write traffic relative to two axpyRow calls.
 */
inline void
axpyRow2(int32_t v0, const int8_t *DITTO_RESTRICT b0, int32_t v1,
         const int8_t *DITTO_RESTRICT b1, int32_t *DITTO_RESTRICT crow,
         int64_t n)
{
    for (int64_t j = 0; j < n; ++j)
        crow[j] += v0 * static_cast<int32_t>(b0[j]) +
                   v1 * static_cast<int32_t>(b1[j]);
}

/**
 * Two 4-bit lane entries fused with an int16 intermediate — the
 * software analogue of the narrow multiplier lane. |v| <= 8 and
 * |b| <= 127, so v0*b0[j] + v1*b1[j] is at most 2032 in magnitude and
 * the int16 truncation is lossless; the vectorizer gets twice the
 * lanes for the multiply half of the work.
 */
inline void
axpyRow2Low4(int16_t v0, const int8_t *DITTO_RESTRICT b0, int16_t v1,
             const int8_t *DITTO_RESTRICT b1, int32_t *DITTO_RESTRICT crow,
             int64_t n)
{
    for (int64_t j = 0; j < n; ++j) {
        const int16_t t = static_cast<int16_t>(
            v0 * static_cast<int16_t>(b0[j]) +
            v1 * static_cast<int16_t>(b1[j]));
        crow[j] += t;
    }
}

/** Sign-extended value of Low4 entry `e` (hot-loop copy). */
inline int32_t
low4At(const uint8_t *DITTO_RESTRICT nibbles, int64_t e)
{
    const uint8_t byte = nibbles[e >> 1];
    const uint8_t nib = (e & 1) ? (byte >> 4) : (byte & 0x0F);
    return (static_cast<int32_t>(nib) ^ 8) - 8;
}

/** Low4 entries accumulated per int16 group register. */
constexpr int64_t kLow4Group = 8;

static_assert(kLow4Group == simd::kLow4Group,
              "dispatched group axpy assumes the plan's group size");

// Full groups of 4-bit lane entries and every wide-lane axpy go
// through the dispatched SIMD table (tensor/simd/simd.h): the group
// axpy accumulates kLow4Group entries through one bounded int16
// intermediate — 8 products of magnitude <= 1024 sum to at most 8192,
// far inside int16, so the truncation is lossless and the int32 output
// row is read and written once per group instead of once per entry.
// kernels_generic.cc holds the portable bodies these calls used to
// inline; axpyRow2/axpyRow2Low4 below stay local (short tails, not
// worth a dispatch slot).

/**
 * Accumulate every panel of `row` into the output row crow[0..n).
 * bmat is row-major [k, n] (already de-transposed). Entries are
 * consumed pairwise; integer addition is exact, so the pairing does
 * not change the result, only the memory traffic.
 */
void
accumulateRow(const DiffGemmPlan &plan, int64_t row,
              const int8_t *DITTO_RESTRICT bmat, int64_t n,
              int32_t *DITTO_RESTRICT crow)
{
    const simd::KernelTable &kt = simd::active();
    const PanelRef *prow = plan.panels.data() + row * plan.panelsPerRow;
    const uint8_t *DITTO_RESTRICT l4off = plan.low4Offsets.data();
    const uint8_t *DITTO_RESTRICT l4nib = plan.low4Nibbles.data();
    const uint8_t *DITTO_RESTRICT f8off = plan.full8Offsets.data();
    const int16_t *DITTO_RESTRICT f8val = plan.full8Values.data();
    for (int64_t pi = 0; pi < plan.panelsPerRow; ++pi) {
        const PanelRef &p = prow[pi];
        if (p.empty())
            continue;
        const int64_t kbase = pi * kDiffPanelK;

        // 4-bit lane entries: full groups through the int16 lane
        // accumulator, short tails through the pairwise path.
        int64_t e = p.low4Begin;
        const int64_t lend = p.low4Begin + p.low4Count;
        for (; e + kLow4Group <= lend; e += kLow4Group) {
            int16_t vs[kLow4Group];
            const int8_t *bs[kLow4Group];
            for (int64_t g = 0; g < kLow4Group; ++g) {
                vs[g] = static_cast<int16_t>(low4At(l4nib, e + g));
                bs[g] = bmat + (kbase + l4off[e + g]) * n;
            }
            kt.low4GroupAxpy(vs, bs, crow, n);
        }
        for (; e + 1 < lend; e += 2) {
            axpyRow2Low4(static_cast<int16_t>(low4At(l4nib, e)),
                         bmat + (kbase + l4off[e]) * n,
                         static_cast<int16_t>(low4At(l4nib, e + 1)),
                         bmat + (kbase + l4off[e + 1]) * n, crow, n);
        }
        if (e < lend)
            kt.diffAxpy(low4At(l4nib, e), bmat + (kbase + l4off[e]) * n,
                        crow, n);

        // Wide entries: pairwise int32 fallback.
        e = p.full8Begin;
        const int64_t wend = p.full8Begin + p.full8Count;
        for (; e + 1 < wend; e += 2) {
            axpyRow2(f8val[e], bmat + (kbase + f8off[e]) * n, f8val[e + 1],
                     bmat + (kbase + f8off[e + 1]) * n, crow, n);
        }
        if (e < wend)
            kt.diffAxpy(f8val[e], bmat + (kbase + f8off[e]) * n, crow, n);
    }
}

} // namespace

void
diffGemmBatch(std::span<const DiffGemmBatchItem> items, int64_t n,
              bool transpose_b)
{
    DITTO_ASSERT(n > 0, "diffGemmBatch needs a positive column count");
    const int64_t count = static_cast<int64_t>(items.size());
    if (count == 0)
        return;

    // De-transpose every item's B once up front (attention batches
    // carry per-request operands; weight-stationary engines pass
    // transpose_b = false and cached transposed weights instead).
    std::vector<std::vector<int8_t>> bts;
    std::vector<const int8_t *> bmats(static_cast<size_t>(count));
    if (transpose_b) {
        bts.resize(static_cast<size_t>(count));
        for (int64_t i = 0; i < count; ++i) {
            const int64_t k = items[i].plan->cols;
            bts[i].resize(static_cast<size_t>(k * n));
            transposeInt8Into(items[i].b, n, k, bts[i].data());
            bmats[i] = bts[i].data();
        }
    } else {
        for (int64_t i = 0; i < count; ++i)
            bmats[i] = items[i].b;
    }

    // One dispatch over the union of all items' rows. A global row is
    // owned by exactly one task and its item-local execution is
    // identical to diffGemm's, so the batch is bitwise equal to
    // per-item calls at any thread count.
    std::vector<int64_t> rowBase(static_cast<size_t>(count + 1), 0);
    for (int64_t i = 0; i < count; ++i)
        rowBase[i + 1] = rowBase[i] + items[i].plan->rows;
    const int64_t total = rowBase[count];
    parallelFor(0, total, [&](int64_t lo, int64_t hi) {
        int64_t it = static_cast<int64_t>(
            std::upper_bound(rowBase.begin(), rowBase.end(), lo) -
            rowBase.begin() - 1);
        for (int64_t g = lo; g < hi; ++g) {
            while (g >= rowBase[it + 1])
                ++it;
            const int64_t row = g - rowBase[it];
            accumulateRow(*items[it].plan, row, bmats[it], n,
                          items[it].out + row * n);
        }
    });
}

Int32Tensor
diffGemm(const DiffGemmPlan &plan, const int8_t *b, int64_t n,
         bool transpose_b, const Int32Tensor *prev)
{
    const int64_t m = plan.rows;
    const int64_t k = plan.cols;
    DITTO_ASSERT(n > 0, "diffGemm needs a positive column count");

    // De-transpose B once (tiled for cache-friendliness) so the axpy
    // always reads contiguous rows. O(k*n) packing against
    // O(nonzero*n) accumulation; weight-stationary engines avoid even
    // this by caching the transposed weight across steps.
    const int8_t *bmat = b;
    std::vector<int8_t> bt;
    if (transpose_b) {
        bt.resize(static_cast<size_t>(k * n));
        transposeInt8Into(b, n, k, bt.data());
        bmat = bt.data();
    }

    Int32Tensor out = prev ? *prev : Int32Tensor(Shape{m, n});
    DITTO_ASSERT(out.shape() == Shape({m, n}),
                 "diffGemm previous-output shape mismatch");
    int32_t *out_data = out.data().data();

    // Row-parallel: each output row is owned by exactly one task and
    // its K reduction runs serially in plan order, so results are
    // bitwise identical at any thread count. Rows whose panels are all
    // zero keep their copy-initialized prev values untouched.
    parallelFor(0, m, [&](int64_t lo, int64_t hi) {
        for (int64_t row = lo; row < hi; ++row)
            accumulateRow(plan, row, bmat, n, out_data + row * n);
    });
    return out;
}

namespace {

/**
 * Scatter one nonzero difference value through its kernel windows into
 * the output-row band [ylo, yhi).
 */
inline void
scatterEntry(const simd::KernelTable &kt, int32_t v, int64_t y, int64_t x,
             const int8_t *DITTO_RESTRICT wbase, const Conv2dParams &p,
             int64_t oh, int64_t ow, int64_t ylo, int64_t yhi,
             int32_t *DITTO_RESTRICT delta)
{
    const int64_t cout = p.outChannels;
    for (int64_t ky = 0; ky < p.kernel; ++ky) {
        const int64_t t = y + p.padding - ky;
        if (t < 0)
            break; // t only decreases with ky
        if (t % p.stride)
            continue;
        const int64_t oy = t / p.stride;
        if (oy >= oh || oy < ylo || oy >= yhi)
            continue;
        for (int64_t kx = 0; kx < p.kernel; ++kx) {
            const int64_t u = x + p.padding - kx;
            if (u < 0)
                break;
            if (u % p.stride)
                continue;
            const int64_t ox = u / p.stride;
            if (ox >= ow)
                continue;
            int32_t *DITTO_RESTRICT dst = delta + (oy * ow + ox) * cout;
            const int8_t *DITTO_RESTRICT wrow =
                wbase + (ky * p.kernel + kx) * cout;
            kt.diffAxpy(v, wrow, dst, cout);
        }
    }
}

/**
 * 1x1/stride-1/pad-0 scatter of one plan: every entry lands in exactly
 * its own output pixel, so the window logic (and the per-entry
 * division) disappears entirely. Different channels scatter into the
 * same output pixels, so the channel loop stays serial; batch slabs
 * parallelize one level up (convDiffScatterBatch runs one item per
 * task).
 */
void
scatterPointwisePlan(const DiffGemmPlan &plan, const int8_t *wmat_t,
                     int64_t cout, int32_t *DITTO_RESTRICT dd)
{
    const simd::KernelTable &kt = simd::active();
    const uint8_t *l4off = plan.low4Offsets.data();
    const uint8_t *l4nib = plan.low4Nibbles.data();
    const uint8_t *f8off = plan.full8Offsets.data();
    const int16_t *f8val = plan.full8Values.data();
    for (int64_t ic = 0; ic < plan.rows; ++ic) {
        const int8_t *DITTO_RESTRICT wrow = wmat_t + ic * cout;
        const PanelRef *prow = plan.panels.data() + ic * plan.panelsPerRow;
        for (int64_t pi = 0; pi < plan.panelsPerRow; ++pi) {
            const PanelRef &pp = prow[pi];
            const int64_t kbase = pi * kDiffPanelK;
            for (int64_t e = pp.low4Begin;
                 e < pp.low4Begin + pp.low4Count; ++e) {
                kt.diffAxpy(low4At(l4nib, e), wrow,
                            dd + (kbase + l4off[e]) * cout, cout);
            }
            for (int64_t e = pp.full8Begin;
                 e < pp.full8Begin + pp.full8Count; ++e) {
                kt.diffAxpy(f8val[e], wrow,
                            dd + (kbase + f8off[e]) * cout, cout);
            }
        }
    }
}

/**
 * Scatter one plan's entries into the output-row band [ylo, yhi).
 * Each band walks the whole plan in fixed order and writes only
 * windows landing in its rows, so any banding yields the same
 * per-element accumulation order.
 */
void
scatterPlanBand(const DiffGemmPlan &plan, const int8_t *wmat_t,
                const int8_t *wrev_t, const Conv2dParams &p, int64_t w,
                int64_t oh, int64_t ow, int64_t ylo, int64_t yhi,
                int32_t *DITTO_RESTRICT dd)
{
    const simd::KernelTable &kt = simd::active();
    const uint8_t *l4off = plan.low4Offsets.data();
    const uint8_t *l4nib = plan.low4Nibbles.data();
    const uint8_t *f8off = plan.full8Offsets.data();
    const int16_t *f8val = plan.full8Values.data();
    const int64_t kk = p.kernel;
    const int64_t cout = p.outChannels;
    const bool unit_stride = p.stride == 1;
    for (int64_t ic = 0; ic < plan.rows; ++ic) {
        const int8_t *wbase = wmat_t + ic * kk * kk * cout;
        const int8_t *wrev_base = wrev_t + ic * kk * kk * cout;
        const PanelRef *prow = plan.panels.data() + ic * plan.panelsPerRow;
        // One entry scattered through its windows; stride-1
        // interior pixels run one contiguous kk*cout-wide axpy per
        // kernel row against the reversed weight.
        auto scatter = [&](int32_t v, int64_t y, int64_t x) {
            if (unit_stride && x >= kk - 1 - p.padding &&
                x + p.padding < ow) {
                const int64_t ox0 = x + p.padding - (kk - 1);
                for (int64_t ky = 0; ky < kk; ++ky) {
                    const int64_t oy = y + p.padding - ky;
                    if (oy < 0)
                        break;
                    if (oy >= oh || oy < ylo || oy >= yhi)
                        continue;
                    kt.diffAxpy(v, wrev_base + ky * kk * cout,
                                dd + (oy * ow + ox0) * cout, kk * cout);
                }
            } else {
                scatterEntry(kt, v, y, x, wbase, p, oh, ow, ylo, yhi, dd);
            }
        };
        for (int64_t pi = 0; pi < plan.panelsPerRow; ++pi) {
            const PanelRef &pp = prow[pi];
            if (pp.empty())
                continue;
            const int64_t kbase = pi * kDiffPanelK;
            // One division per panel; entries advance y/x from the
            // panel origin with at most a few subtractions.
            const int64_t y0 = kbase / w;
            const int64_t x0 = kbase % w;
            auto toYx = [&](int64_t off, int64_t *y, int64_t *x) {
                int64_t yy = y0;
                int64_t xx = x0 + off;
                while (xx >= w) {
                    xx -= w;
                    ++yy;
                }
                *y = yy;
                *x = xx;
            };
            int64_t y, x;
            for (int64_t e = pp.low4Begin;
                 e < pp.low4Begin + pp.low4Count; ++e) {
                toYx(l4off[e], &y, &x);
                scatter(low4At(l4nib, e), y, x);
            }
            for (int64_t e = pp.full8Begin;
                 e < pp.full8Begin + pp.full8Count; ++e) {
                toYx(f8off[e], &y, &x);
                scatter(f8val[e], y, x);
            }
        }
    }
}

} // namespace

Int32Tensor
convDiffScatter(const DiffGemmPlan &plan, const int8_t *wmat_t,
                const int8_t *wrev_t, const Conv2dParams &p, int64_t h,
                int64_t w)
{
    DITTO_ASSERT(plan.rows == p.inChannels && plan.cols == h * w,
                 "convDiffScatter plan must cover the [Cin, H*W] slab");
    const int64_t oh = p.outExtent(h);
    const int64_t ow = p.outExtent(w);
    DITTO_ASSERT(oh > 0 && ow > 0, "convDiffScatter output would be empty");
    Int32Tensor delta(Shape{oh * ow, p.outChannels});
    int32_t *dd = delta.data().data();
    if (p.kernel == 1 && p.stride == 1 && p.padding == 0) {
        scatterPointwisePlan(plan, wmat_t, p.outChannels, dd);
        return delta;
    }
    parallelFor(0, oh, [&](int64_t ylo, int64_t yhi) {
        scatterPlanBand(plan, wmat_t, wrev_t, p, w, oh, ow, ylo, yhi, dd);
    });
    return delta;
}

void
convDiffScatterBatch(std::span<const ConvScatterBatchItem> items,
                     const int8_t *wmat_t, const int8_t *wrev_t,
                     const Conv2dParams &p, int64_t h, int64_t w)
{
    const int64_t count = static_cast<int64_t>(items.size());
    if (count == 0)
        return;
    const int64_t oh = p.outExtent(h);
    const int64_t ow = p.outExtent(w);
    DITTO_ASSERT(oh > 0 && ow > 0,
                 "convDiffScatterBatch output would be empty");
    for (const ConvScatterBatchItem &item : items)
        DITTO_ASSERT(item.plan->rows == p.inChannels &&
                     item.plan->cols == h * w,
                     "convDiffScatterBatch plan must cover the slab");
    if (p.kernel == 1 && p.stride == 1 && p.padding == 0) {
        // Pointwise scatter is serial within a slab; slabs are
        // independent, so the batch parallelizes across items — the
        // banding the single-slab path cannot have.
        parallelFor(0, count, 1, [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i)
                scatterPointwisePlan(*items[i].plan, wmat_t,
                                     p.outChannels, items[i].delta);
        });
        return;
    }
    // (item, output-row band) tasks flattened into one dispatch; a
    // chunk spanning items executes each item's own band portion.
    parallelFor(0, count * oh, [&](int64_t lo, int64_t hi) {
        for (int64_t g = lo; g < hi;) {
            const int64_t i = g / oh;
            const int64_t ylo = g % oh;
            const int64_t yhi = std::min(oh, ylo + (hi - g));
            scatterPlanBand(*items[i].plan, wmat_t, wrev_t, p, w, oh, ow,
                            ylo, yhi, items[i].delta);
            g += yhi - ylo;
        }
    });
}

Int8Tensor
transposeInt8(const Int8Tensor &m)
{
    DITTO_ASSERT(m.shape().rank() == 2, "transposeInt8 expects a matrix");
    const int64_t rows = m.shape()[0];
    const int64_t cols = m.shape()[1];
    Int8Tensor out(Shape{cols, rows});
    transposeInt8Into(m.data().data(), rows, cols, out.data().data());
    return out;
}

Int32Tensor
addTransposedInt32(const Int32Tensor &prev, const Int32Tensor &delta)
{
    DITTO_ASSERT(prev.shape().rank() == 2 && delta.shape().rank() == 2,
                 "addTransposedInt32 expects matrices");
    const int64_t m = prev.shape()[0];
    const int64_t n = prev.shape()[1];
    DITTO_ASSERT(delta.shape() == Shape({n, m}),
                 "addTransposedInt32 operand shape mismatch");
    Int32Tensor out(prev.shape());
    const int32_t *DITTO_RESTRICT sp = prev.data().data();
    const int32_t *DITTO_RESTRICT sd = delta.data().data();
    int32_t *DITTO_RESTRICT so = out.data().data();
    // Tiled so the strided reads of delta stay cache-resident.
    const int64_t rtiles = (m + kTransposeTile - 1) / kTransposeTile;
    parallelFor(0, rtiles, [&](int64_t lo, int64_t hi) {
        for (int64_t rt = lo; rt < hi; ++rt) {
            const int64_t r0 = rt * kTransposeTile;
            const int64_t r1 = std::min(m, r0 + kTransposeTile);
            for (int64_t c0 = 0; c0 < n; c0 += kTransposeTile) {
                const int64_t c1 = std::min(n, c0 + kTransposeTile);
                for (int64_t r = r0; r < r1; ++r)
                    for (int64_t c = c0; c < c1; ++c)
                        so[r * n + c] = sp[r * n + c] + sd[c * m + r];
            }
        }
    });
    return out;
}

void
addTransposedInt32InPlace(int32_t *acc, const int32_t *delta, int64_t m,
                          int64_t n)
{
    int32_t *DITTO_RESTRICT so = acc;
    const int32_t *DITTO_RESTRICT sd = delta;
    for (int64_t r0 = 0; r0 < m; r0 += kTransposeTile) {
        const int64_t r1 = std::min(m, r0 + kTransposeTile);
        for (int64_t c0 = 0; c0 < n; c0 += kTransposeTile) {
            const int64_t c1 = std::min(n, c0 + kTransposeTile);
            for (int64_t r = r0; r < r1; ++r)
                for (int64_t c = c0; c < c1; ++c)
                    so[r * n + c] += sd[c * m + r];
        }
    }
}

Int32Tensor
addConvDelta(const Int32Tensor &prev_out, const Int32Tensor &delta)
{
    DITTO_ASSERT(prev_out.shape().rank() == 4,
                 "addConvDelta expects an NCHW previous output");
    const int64_t batches = prev_out.shape()[0];
    const int64_t ch = prev_out.shape()[1];
    const int64_t pix = prev_out.shape()[2] * prev_out.shape()[3];
    DITTO_ASSERT(delta.shape() == Shape({batches * pix, ch}),
                 "addConvDelta delta shape mismatch");
    Int32Tensor out(prev_out.shape());
    const int32_t *DITTO_RESTRICT sp = prev_out.data().data();
    const int32_t *DITTO_RESTRICT sd = delta.data().data();
    int32_t *DITTO_RESTRICT so = out.data().data();
    parallelFor(0, batches * ch, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            const int64_t b = i / ch;
            const int64_t c = i % ch;
            const int32_t *src = sp + i * pix;
            int32_t *dst = so + i * pix;
            const int32_t *dcol = sd + b * pix * ch + c;
            for (int64_t p = 0; p < pix; ++p)
                dst[p] = src[p] + dcol[p * ch];
        }
    });
    return out;
}

void
addConvDeltaInto(const Int32Tensor &prev_out, const Int32Tensor &delta,
                 int64_t batch0, int64_t batches, int64_t delta_batch0,
                 Int32Tensor *out)
{
    DITTO_ASSERT(prev_out.shape().rank() == 4,
                 "addConvDeltaInto expects an NCHW previous output");
    const int64_t total = prev_out.shape()[0];
    const int64_t ch = prev_out.shape()[1];
    const int64_t pix = prev_out.shape()[2] * prev_out.shape()[3];
    DITTO_ASSERT(batch0 >= 0 && batches >= 0 && batch0 + batches <= total,
                 "addConvDeltaInto batch range out of bounds");
    DITTO_ASSERT(delta.shape().rank() == 2 && delta.shape()[1] == ch &&
                 delta.shape()[0] % pix == 0 &&
                 delta_batch0 >= 0 &&
                 (delta_batch0 + batches) * pix <= delta.shape()[0],
                 "addConvDeltaInto delta shape mismatch");
    DITTO_ASSERT(out->shape() == prev_out.shape(),
                 "addConvDeltaInto output shape mismatch");
    const int32_t *DITTO_RESTRICT sp = prev_out.data().data();
    const int32_t *DITTO_RESTRICT sd = delta.data().data();
    int32_t *DITTO_RESTRICT so = out->data().data();
    parallelFor(batch0 * ch, (batch0 + batches) * ch,
                [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            const int64_t b = i / ch;
            const int64_t c = i % ch;
            const int32_t *src = sp + i * pix;
            int32_t *dst = so + i * pix;
            const int32_t *dcol =
                sd + (delta_batch0 + b - batch0) * pix * ch + c;
            for (int64_t p = 0; p < pix; ++p)
                dst[p] = src[p] + dcol[p * ch];
        }
    });
}

} // namespace kernels
} // namespace ditto
