/**
 * @file
 * Blocked, parallel kernel implementations.
 *
 * Layout conventions (see docs/kernels.md):
 *  - A panels: kMr rows x KC columns, stored k-major (ap[k*kMr + r])
 *    and zero-padded to kMr rows so the micro-kernel never branches.
 *  - B panels: KC rows x kNr columns, stored k-major (bp[k*kNr + j])
 *    and zero-padded to kNr columns. Zero padding contributes exact
 *    zeros, so fringe tiles stay bit-correct for every element type.
 *  - The K dimension is processed in serial KC-sized blocks; threads
 *    split only the row-panel (M) dimension, so every output element
 *    accumulates in one fixed order regardless of thread count.
 */
#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>
#include <type_traits>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"
#include "tensor/simd/simd.h"

#define DITTO_RESTRICT __restrict__

namespace ditto {
namespace kernels {

namespace {

/** Micro-tile rows: output rows accumulated per micro-kernel call. */
constexpr int64_t kMr = 4;
/** Micro-tile columns: one or two SIMD vectors of accumulators. */
constexpr int64_t kNr = 16;

static_assert(kMr == simd::kGemmMr && kNr == simd::kGemmNr,
              "dispatched micro-kernels assume the driver's tile shape");
/** K-dimension cache block (panel depth). */
constexpr int64_t kKc = 256;
/** N-dimension cache block (columns packed per B slab). */
constexpr int64_t kNc = 4096;
/** Elements per chunk for parallel elementwise sweeps. */
constexpr int64_t kElemGrain = 1 << 15;

int64_t
ceilDiv(int64_t a, int64_t b)
{
    return (a + b - 1) / b;
}

float
siluScalar(float v)
{
    return v / (1.0f + fastExpf(-v));
}

float
geluScalar(float v)
{
    // tanh approximation: 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3)))
    constexpr float kC = 0.7978845608028654f; // sqrt(2/pi)
    return 0.5f * v * (1.0f + std::tanh(kC * (v + 0.044715f * v * v * v)));
}

float
applyActivation(float v, Activation act)
{
    switch (act) {
      case Activation::kNone:
        return v;
      case Activation::kSiLU:
        return siluScalar(v);
      case Activation::kGELU:
        return geluScalar(v);
    }
    DITTO_PANIC("unknown Activation");
}

/**
 * Pack one kMr-row panel of A (row-major, leading dim lda), k-major,
 * widening the elements to the accumulator type. Widening here (once
 * per packed element, amortized over a whole row of micro-kernel
 * calls) keeps the micro-kernel arithmetic uniform in TAcc, which is
 * what lets the compiler turn its inner loop into plain vector FMAs /
 * 32-bit multiplies instead of scalar widening sequences.
 */
template <typename TA, typename TAcc>
void
packPanelA(const TA *DITTO_RESTRICT a, int64_t lda, int64_t row0,
           int64_t rows, int64_t k0, int64_t kcs, TAcc *DITTO_RESTRICT ap)
{
    for (int64_t kk = 0; kk < kcs; ++kk) {
        for (int64_t r = 0; r < kMr; ++r) {
            ap[kk * kMr + r] =
                r < rows ? static_cast<TAcc>(a[(row0 + r) * lda + k0 + kk])
                         : TAcc{0};
        }
    }
}

/**
 * Pack one kNr-column panel of B, k-major, widened to TAcc.
 *
 * trans_b selects the logical orientation: false reads row-major
 * B[k,n] (b[kk*ldb + col]), true reads row-major B[n,k] (b[col*ldb +
 * kk], i.e. the operand of a transposed product).
 */
template <typename TB, typename TAcc>
void
packPanelB(const TB *DITTO_RESTRICT b, int64_t ldb, bool trans_b,
           int64_t col0, int64_t cols, int64_t k0, int64_t kcs,
           TAcc *DITTO_RESTRICT bp)
{
    if (!trans_b) {
        for (int64_t kk = 0; kk < kcs; ++kk) {
            const TB *src = b + (k0 + kk) * ldb + col0;
            for (int64_t j = 0; j < kNr; ++j)
                bp[kk * kNr + j] =
                    j < cols ? static_cast<TAcc>(src[j]) : TAcc{0};
        }
    } else {
        for (int64_t j = 0; j < kNr; ++j) {
            if (j < cols) {
                const TB *src = b + (col0 + j) * ldb + k0;
                for (int64_t kk = 0; kk < kcs; ++kk)
                    bp[kk * kNr + j] = static_cast<TAcc>(src[kk]);
            } else {
                for (int64_t kk = 0; kk < kcs; ++kk)
                    bp[kk * kNr + j] = TAcc{0};
            }
        }
    }
}

/**
 * kMr x kNr register tile over a KC block of packed, pre-widened
 * panels: acc[r][j] += ap[k][r] * bp[k][j].
 *
 * On GCC/Clang the kNr-wide accumulator rows are expressed with
 * portable vector extensions — one vector register per row, a
 * broadcast-multiply-accumulate per (k, row) — because the
 * auto-vectorizer otherwise picks the 4-wide row dimension and emits
 * shuffle-heavy code. Element semantics are identical to the scalar
 * fallback (same per-element accumulation order), so results do not
 * depend on which path was compiled in.
 */
template <typename TAcc>
void
microKernel(int64_t kcs, const TAcc *DITTO_RESTRICT ap,
            const TAcc *DITTO_RESTRICT bp, TAcc *DITTO_RESTRICT acc)
{
#if defined(__GNUC__) || defined(__clang__)
    static_assert(kMr == 4, "micro-kernel is unrolled for kMr == 4");
    // aligned(alignof(TAcc)): packed panels come from std::vector, so
    // loads/stores must not assume full vector alignment.
    typedef TAcc Vec __attribute__((vector_size(kNr * sizeof(TAcc)),
                                    aligned(alignof(TAcc))));
    Vec a0{}, a1{}, a2{}, a3{};
    for (int64_t kk = 0; kk < kcs; ++kk) {
        const TAcc *DITTO_RESTRICT arow = ap + kk * kMr;
        const Vec b = *reinterpret_cast<const Vec *>(bp + kk * kNr);
        a0 += b * arow[0];
        a1 += b * arow[1];
        a2 += b * arow[2];
        a3 += b * arow[3];
    }
    *reinterpret_cast<Vec *>(acc + 0 * kNr) += a0;
    *reinterpret_cast<Vec *>(acc + 1 * kNr) += a1;
    *reinterpret_cast<Vec *>(acc + 2 * kNr) += a2;
    *reinterpret_cast<Vec *>(acc + 3 * kNr) += a3;
#else
    for (int64_t kk = 0; kk < kcs; ++kk) {
        const TAcc *DITTO_RESTRICT arow = ap + kk * kMr;
        const TAcc *DITTO_RESTRICT brow = bp + kk * kNr;
        for (int64_t r = 0; r < kMr; ++r) {
            const TAcc av = arow[r];
            for (int64_t j = 0; j < kNr; ++j)
                acc[r * kNr + j] += av * brow[j];
        }
    }
#endif
}

/**
 * Pack one kMr-row panel of A as int16 in K-pair-interleaved order for
 * the dispatched integer micro-kernels (layout in tensor/simd/simd.h):
 * ap[p*2*kMr + r*2 + s] = A[row0 + r, k0 + 2p + s]. The K extent is
 * padded to even with zero pairs (exact zeros), rows to kMr as usual.
 */
template <typename TA>
void
packPanelAPairs(const TA *DITTO_RESTRICT a, int64_t lda, int64_t row0,
                int64_t rows, int64_t k0, int64_t kcs,
                int16_t *DITTO_RESTRICT ap)
{
    const int64_t pairs = (kcs + 1) / 2;
    for (int64_t p = 0; p < pairs; ++p) {
        for (int64_t r = 0; r < kMr; ++r) {
            for (int64_t s = 0; s < 2; ++s) {
                const int64_t kk = 2 * p + s;
                ap[p * 2 * kMr + r * 2 + s] =
                    (r < rows && kk < kcs)
                        ? static_cast<int16_t>(a[(row0 + r) * lda + k0 + kk])
                        : int16_t{0};
            }
        }
    }
}

/**
 * Pack one kNr-column panel of B as int16 in K-pair-interleaved order:
 * bp[p*2*kNr + j*2 + s] = B[k0 + 2p + s, col0 + j] (trans_b as in
 * packPanelB). One 32-bit lane then holds a column's (k, k+1) pair —
 * the operand shape of vpmaddwd / vpdpwssd and of a de-interleaving
 * vld2 on NEON.
 */
template <typename TB>
void
packPanelBPairs(const TB *DITTO_RESTRICT b, int64_t ldb, bool trans_b,
                int64_t col0, int64_t cols, int64_t k0, int64_t kcs,
                int16_t *DITTO_RESTRICT bp)
{
    const int64_t pairs = (kcs + 1) / 2;
    for (int64_t p = 0; p < pairs; ++p) {
        for (int64_t j = 0; j < kNr; ++j) {
            for (int64_t s = 0; s < 2; ++s) {
                const int64_t kk = 2 * p + s;
                int16_t v = 0;
                if (j < cols && kk < kcs)
                    v = static_cast<int16_t>(
                        trans_b ? b[(col0 + j) * ldb + k0 + kk]
                                : b[(k0 + kk) * ldb + col0 + j]);
                bp[p * 2 * kNr + j * 2 + s] = v;
            }
        }
    }
}

/**
 * Integer-GEMM driver over pair-packed int16 panels, used when the
 * active SIMD table provides a hand-written pair micro-kernel. Same
 * blocking, same thread split, and — because int32 accumulation is
 * exact under any association (two's-complement addition is
 * associative even across wraparound) — bitwise-identical output to
 * the generic driver for every integer instantiation.
 */
template <typename TA, typename TB>
void
gemmDriverPairs(const TA *a, int64_t lda, const TB *b, int64_t ldb,
                bool trans_b, int32_t *c, int64_t ldc, int64_t m,
                int64_t n, int64_t k,
                void (*micro)(int64_t, const int16_t *, const int16_t *,
                              int32_t *))
{
    const int64_t row_panels = ceilDiv(m, kMr);
    std::vector<int16_t> bpack;
    for (int64_t jc = 0; jc < n; jc += kNc) {
        const int64_t ncs = std::min(kNc, n - jc);
        const int64_t col_panels = ceilDiv(ncs, kNr);
        for (int64_t kc = 0; kc < k; kc += kKc) {
            const int64_t kcs = std::min(kKc, k - kc);
            const int64_t pairs = (kcs + 1) / 2;
            bpack.resize(static_cast<size_t>(col_panels * kNr * 2 * pairs));
            int16_t *bpack_data = bpack.data();
            parallelFor(0, col_panels, [&](int64_t lo, int64_t hi) {
                for (int64_t cp = lo; cp < hi; ++cp) {
                    packPanelBPairs(b, ldb, trans_b, jc + cp * kNr,
                                    std::min(kNr, ncs - cp * kNr), kc, kcs,
                                    bpack_data + cp * kNr * 2 * pairs);
                }
            });
            parallelFor(0, row_panels, [&](int64_t lo, int64_t hi) {
                thread_local std::vector<int16_t> apack;
                apack.resize(static_cast<size_t>(kMr * 2 * pairs));
                for (int64_t rp = lo; rp < hi; ++rp) {
                    const int64_t row0 = rp * kMr;
                    const int64_t rows = std::min(kMr, m - row0);
                    packPanelAPairs(a, lda, row0, rows, kc, kcs,
                                    apack.data());
                    for (int64_t cp = 0; cp < col_panels; ++cp) {
                        int32_t acc[kMr * kNr] = {};
                        micro(pairs, apack.data(),
                              bpack_data + cp * kNr * 2 * pairs, acc);
                        const int64_t col0 = jc + cp * kNr;
                        const int64_t cols = std::min(kNr, ncs - cp * kNr);
                        for (int64_t r = 0; r < rows; ++r) {
                            int32_t *crow = c + (row0 + r) * ldc + col0;
                            for (int64_t j = 0; j < cols; ++j)
                                crow[j] += acc[r * kNr + j];
                        }
                    }
                }
            });
        }
    }
}

/**
 * Blocked GEMM on raw row-major buffers: C += A * op(B), with an
 * optional fused bias/activation epilogue for float accumulators.
 *
 * C must be zero-initialized (freshly constructed tensors are).
 * When bias_per_row is false the bias indexes columns (fully-connected
 * convention); when true it indexes rows (conv output channels).
 */
template <typename TA, typename TB, typename TAcc>
void
gemmDriver(const TA *a, int64_t lda, const TB *b, int64_t ldb,
           bool trans_b, TAcc *c, int64_t ldc, int64_t m, int64_t n,
           int64_t k, const float *bias = nullptr,
           bool bias_per_row = false, Activation act = Activation::kNone)
{
    // Integer products route through the dispatched pair micro-kernel
    // when the active SIMD level provides one; the generic level keeps
    // gemmMicroPairs null, so DITTO_SIMD=generic (and any host without
    // hand-written kernels) runs the historic path below verbatim.
    // Float stays on the generic micro-kernel unconditionally: its
    // accumulation order is part of the output contract.
    if constexpr (std::is_integral_v<TA> && std::is_integral_v<TB> &&
                  std::is_same_v<TAcc, int32_t>) {
        if (auto *micro = simd::active().gemmMicroPairs;
            micro && !bias && act == Activation::kNone) {
            gemmDriverPairs<TA, TB>(a, lda, b, ldb, trans_b, c, ldc, m, n,
                                    k, micro);
            return;
        }
    }
    const int64_t row_panels = ceilDiv(m, kMr);
    std::vector<TAcc> bpack;
    for (int64_t jc = 0; jc < n; jc += kNc) {
        const int64_t ncs = std::min(kNc, n - jc);
        const int64_t col_panels = ceilDiv(ncs, kNr);
        for (int64_t kc = 0; kc < k; kc += kKc) {
            const int64_t kcs = std::min(kKc, k - kc);
            const bool last_kc = kc + kcs == k;
            bpack.resize(static_cast<size_t>(col_panels * kNr * kcs));
            TAcc *bpack_data = bpack.data();
            parallelFor(0, col_panels, [&](int64_t lo, int64_t hi) {
                for (int64_t cp = lo; cp < hi; ++cp) {
                    packPanelB(b, ldb, trans_b, jc + cp * kNr,
                               std::min(kNr, ncs - cp * kNr), kc, kcs,
                               bpack_data + cp * kNr * kcs);
                }
            });
            parallelFor(0, row_panels, [&](int64_t lo, int64_t hi) {
                thread_local std::vector<TAcc> apack;
                apack.resize(static_cast<size_t>(kMr * kcs));
                for (int64_t rp = lo; rp < hi; ++rp) {
                    const int64_t row0 = rp * kMr;
                    const int64_t rows = std::min(kMr, m - row0);
                    packPanelA(a, lda, row0, rows, kc, kcs, apack.data());
                    for (int64_t cp = 0; cp < col_panels; ++cp) {
                        TAcc acc[kMr * kNr] = {};
                        microKernel(kcs, apack.data(),
                                    bpack_data + cp * kNr * kcs, acc);
                        const int64_t col0 = jc + cp * kNr;
                        const int64_t cols = std::min(kNr, ncs - cp * kNr);
                        for (int64_t r = 0; r < rows; ++r) {
                            TAcc *crow = c + (row0 + r) * ldc + col0;
                            for (int64_t j = 0; j < cols; ++j)
                                crow[j] += acc[r * kNr + j];
                            if constexpr (std::is_same_v<TAcc, float>) {
                                // Fused epilogue once the K reduction
                                // for these columns is complete.
                                if (last_kc &&
                                    (bias || act != Activation::kNone)) {
                                    for (int64_t j = 0; j < cols; ++j) {
                                        float v = crow[j];
                                        if (bias)
                                            v += bias_per_row
                                                     ? bias[row0 + r]
                                                     : bias[col0 + j];
                                        crow[j] = applyActivation(v, act);
                                    }
                                }
                            }
                        }
                    }
                }
            });
        }
    }
}

/** Shape checks + driver dispatch for the matrix entry points. */
template <typename TA, typename TB, typename TAcc>
Tensor<TAcc>
gemmTensor(const Tensor<TA> &a, const Tensor<TB> &b, bool trans_b,
           const FloatTensor *bias = nullptr,
           Activation act = Activation::kNone)
{
    DITTO_ASSERT(a.shape().rank() == 2 && b.shape().rank() == 2,
                 "gemm operands must be matrices");
    const int64_t m = a.shape()[0];
    const int64_t k = a.shape()[1];
    const int64_t n = trans_b ? b.shape()[0] : b.shape()[1];
    const int64_t inner = trans_b ? b.shape()[1] : b.shape()[0];
    DITTO_ASSERT(inner == k, "gemm inner dimensions mismatch");
    if (bias)
        DITTO_ASSERT(bias->numel() == n, "gemm bias size mismatch");
    Tensor<TAcc> c(Shape{m, n});
    gemmDriver<TA, TB, TAcc>(a.data().data(), k, b.data().data(),
                             trans_b ? k : n, trans_b, c.data().data(), n,
                             m, n, k,
                             bias ? bias->data().data() : nullptr,
                             /*bias_per_row=*/false, act);
    return c;
}

/**
 * im2col: one batch of NCHW input -> patch matrix col[P, K] with
 * P = oh*ow and K = cin*kernel*kernel (OIHW weight order), zero-filled
 * where the window overhangs the padding border.
 */
template <typename TIn>
void
im2col(const TIn *DITTO_RESTRICT in, int64_t h, int64_t w, int64_t cin,
       const Conv2dParams &p, int64_t oh, int64_t ow,
       TIn *DITTO_RESTRICT col)
{
    const int64_t kk = p.kernel;
    const int64_t patch = cin * kk * kk;
    // Stride-1 pixels whose kernel window lies fully inside the input
    // copy one contiguous kk-run per (channel, kernel row) with no
    // per-element bounds checks; that is every pixel except a
    // padding-wide border, i.e. almost all of them, and the branchy
    // per-element path that used to dominate rollout profiles now only
    // runs on the border.
    parallelFor(0, oh * ow, [&](int64_t lo, int64_t hi) {
        for (int64_t pix = lo; pix < hi; ++pix) {
            const int64_t oy = pix / ow;
            const int64_t ox = pix % ow;
            TIn *DITTO_RESTRICT dst = col + pix * patch;
            const bool interior =
                p.stride == 1 && ox >= p.padding && ox - p.padding + kk <= w;
            for (int64_t ic = 0; ic < cin; ++ic) {
                const TIn *plane = in + ic * h * w;
                for (int64_t ky = 0; ky < kk; ++ky) {
                    const int64_t iy = oy * p.stride + ky - p.padding;
                    if (iy < 0 || iy >= h) {
                        for (int64_t kx = 0; kx < kk; ++kx)
                            *dst++ = TIn{0};
                        continue;
                    }
                    const TIn *DITTO_RESTRICT row = plane + iy * w;
                    if (interior) {
                        const TIn *DITTO_RESTRICT src =
                            row + ox - p.padding;
                        for (int64_t kx = 0; kx < kk; ++kx)
                            *dst++ = src[kx];
                        continue;
                    }
                    for (int64_t kx = 0; kx < kk; ++kx) {
                        const int64_t ix = ox * p.stride + kx - p.padding;
                        *dst++ = (ix >= 0 && ix < w) ? row[ix] : TIn{0};
                    }
                }
            }
        }
    });
}

/**
 * Convolution of the batch range [batch0, batch0 + batches) of a
 * stacked NCHW input, lowered onto the blocked GEMM and written into
 * the same slabs of `out`: out[b] (viewed as [cout, oh*ow]) =
 * W[cout, K] * col[b]^T.
 *
 * 1x1/stride-1/pad-0 convolutions skip im2col entirely: the input slab
 * [cin, h*w] already is the K x P operand in row-major order.
 *
 * Multi-slab ranges run slab by slab, parallelized across slabs when
 * there are enough to occupy the pool. A column-folded single driver
 * call over all slabs was tried and measured slower (see the comment
 * at the batch loop), so batching a conv amortizes dispatch, not
 * packing.
 */
template <typename TIn, typename TW, typename TAcc>
void
convBlockedInto(const Tensor<TIn> &input, const Tensor<TW> &weight,
                const FloatTensor *bias, const Conv2dParams &p,
                Activation act, int64_t batch0, int64_t batches,
                Tensor<TAcc> *out)
{
    DITTO_ASSERT(input.shape().rank() == 4, "conv input must be NCHW");
    DITTO_ASSERT(weight.shape().rank() == 4, "conv weight must be OIHW");
    const int64_t total_batches = input.shape()[0];
    const int64_t cin = input.shape()[1];
    const int64_t h = input.shape()[2];
    const int64_t w = input.shape()[3];
    DITTO_ASSERT(batch0 >= 0 && batches >= 0 &&
                 batch0 + batches <= total_batches,
                 "conv batch range out of bounds");
    DITTO_ASSERT(cin == p.inChannels, "conv input channels mismatch");
    DITTO_ASSERT(weight.shape()[0] == p.outChannels &&
                 weight.shape()[1] == p.inChannels &&
                 weight.shape()[2] == p.kernel &&
                 weight.shape()[3] == p.kernel,
                 "conv weight shape mismatch");
    const int64_t oh = p.outExtent(h);
    const int64_t ow = p.outExtent(w);
    DITTO_ASSERT(oh > 0 && ow > 0, "conv output would be empty");
    DITTO_ASSERT(out->shape() ==
                 Shape({total_batches, p.outChannels, oh, ow}),
                 "conv output shape mismatch");
    if (bias)
        DITTO_ASSERT(bias->numel() == p.outChannels,
                     "conv bias size mismatch");

    const int64_t pix = oh * ow;
    const int64_t patch = cin * p.kernel * p.kernel;
    const bool pointwise =
        p.kernel == 1 && p.stride == 1 && p.padding == 0;
    const TW *wmat = weight.data().data();
    const float *bias_data = bias ? bias->data().data() : nullptr;
    const TIn *in0 = input.data().data() + batch0 * cin * h * w;
    TAcc *out0 = out->data().data() + batch0 * p.outChannels * pix;

    // Each slab runs its own im2col + GEMM. A single column-folded
    // driver call over all slabs was tried here and measured *slower*:
    // the folded packed-B working set (batches * pix * patch widened
    // elements) falls out of L1/L2 exactly when batching matters, while
    // the per-slab pack stays cache-resident. Batch amortization comes
    // from the slab-parallel dispatch below and from the row-folded
    // GEMMs of the token-matrix layers instead.
    auto runBatch = [&](int64_t b, std::vector<TIn> &col) {
        const TIn *in_slab = in0 + b * cin * h * w;
        TAcc *out_slab = out0 + b * p.outChannels * pix;
        if (pointwise) {
            // B = input slab [cin, pix] row-major, not transposed.
            gemmDriver<TW, TIn, TAcc>(wmat, patch, in_slab, pix,
                                      /*trans_b=*/false, out_slab, pix,
                                      p.outChannels, pix, patch,
                                      bias_data, /*bias_per_row=*/true,
                                      act);
        } else {
            col.resize(static_cast<size_t>(pix * patch));
            im2col(in_slab, h, w, cin, p, oh, ow, col.data());
            // B = col [pix, patch] row-major, transposed product.
            gemmDriver<TW, TIn, TAcc>(wmat, patch, col.data(), patch,
                                      /*trans_b=*/true, out_slab, pix,
                                      p.outChannels, pix, patch,
                                      bias_data, /*bias_per_row=*/true,
                                      act);
        }
    };
    // Pick the parallel level by shape: enough batches to occupy the
    // pool -> parallelize across batches (inner parallelFor calls run
    // inline on the workers); few batches -> keep the batch loop
    // serial and exploit the parallelism inside im2col and the GEMM
    // row panels. Either way each output element is produced by the
    // same fixed accumulation order, so results are identical.
    if (batches >= threadCount() && batches > 1) {
        parallelFor(0, batches, 1, [&](int64_t lo, int64_t hi) {
            thread_local std::vector<TIn> col;
            for (int64_t b = lo; b < hi; ++b)
                runBatch(b, col);
        });
    } else {
        std::vector<TIn> col;
        for (int64_t b = 0; b < batches; ++b)
            runBatch(b, col);
    }
}

template <typename TIn, typename TW, typename TAcc>
Tensor<TAcc>
convBlocked(const Tensor<TIn> &input, const Tensor<TW> &weight,
            const FloatTensor *bias, const Conv2dParams &p,
            Activation act = Activation::kNone)
{
    DITTO_ASSERT(input.shape().rank() == 4, "conv input must be NCHW");
    const int64_t batches = input.shape()[0];
    const int64_t oh = p.outExtent(input.shape()[2]);
    const int64_t ow = p.outExtent(input.shape()[3]);
    DITTO_ASSERT(oh > 0 && ow > 0, "conv output would be empty");
    Tensor<TAcc> out(Shape{batches, p.outChannels, oh, ow});
    convBlockedInto(input, weight, bias, p, act, 0, batches, &out);
    return out;
}

/** Parallel elementwise binary kernel. */
template <typename T, typename Fn>
Tensor<T>
zipWithParallel(const Tensor<T> &a, const Tensor<T> &b, Fn fn)
{
    DITTO_ASSERT(a.shape() == b.shape(), "elementwise shape mismatch");
    Tensor<T> out(a.shape());
    const T *DITTO_RESTRICT sa = a.data().data();
    const T *DITTO_RESTRICT sb = b.data().data();
    T *DITTO_RESTRICT so = out.data().data();
    parallelFor(0, a.numel(), kElemGrain, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i)
            so[i] = fn(sa[i], sb[i]);
    });
    return out;
}

/** Parallel elementwise unary kernel. */
template <typename T, typename Fn>
Tensor<T>
mapParallel(const Tensor<T> &x, Fn fn)
{
    Tensor<T> out(x.shape());
    const T *DITTO_RESTRICT sx = x.data().data();
    T *DITTO_RESTRICT so = out.data().data();
    parallelFor(0, x.numel(), kElemGrain, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i)
            so[i] = fn(sx[i]);
    });
    return out;
}

/**
 * Normalize `count` contiguous values with a single fused
 * sum/sum-of-squares sweep (vs the naive references' three passes).
 */
void
normalizeSpan(const float *DITTO_RESTRICT src, float *DITTO_RESTRICT dst,
              int64_t count, float eps)
{
    double sum = 0.0;
    double sumsq = 0.0;
    for (int64_t i = 0; i < count; ++i) {
        const double v = src[i];
        sum += v;
        sumsq += v * v;
    }
    const double mean = sum / static_cast<double>(count);
    const double var =
        std::max(0.0, sumsq / static_cast<double>(count) - mean * mean);
    const float fmean = static_cast<float>(mean);
    const float inv = 1.0f / std::sqrt(static_cast<float>(var) + eps);
    for (int64_t i = 0; i < count; ++i)
        dst[i] = (src[i] - fmean) * inv;
}

} // namespace

FloatTensor
gemm(const FloatTensor &a, const FloatTensor &b, bool transpose_b,
     const FloatTensor *bias, Activation act)
{
    return gemmTensor<float, float, float>(a, b, transpose_b, bias, act);
}

Int32Tensor
gemmInt8(const Int8Tensor &a, const Int8Tensor &b, bool transpose_b)
{
    return gemmTensor<int8_t, int8_t, int32_t>(a, b, transpose_b);
}

Int32Tensor
gemmDiffInt16(const Int16Tensor &a, const Int8Tensor &b, bool transpose_b)
{
    return gemmTensor<int16_t, int8_t, int32_t>(a, b, transpose_b);
}

FloatTensor
conv2d(const FloatTensor &input, const FloatTensor &weight,
       const FloatTensor *bias, const Conv2dParams &params, Activation act)
{
    return convBlocked<float, float, float>(input, weight, bias, params,
                                            act);
}

Int32Tensor
conv2dInt8(const Int8Tensor &input, const Int8Tensor &weight,
           const Conv2dParams &params)
{
    return convBlocked<int8_t, int8_t, int32_t>(input, weight, nullptr,
                                                params);
}

void
gemmInt8Into(const int8_t *a, int64_t m, int64_t k, const int8_t *b,
             int64_t n, bool trans_b, int32_t *c)
{
    gemmDriver<int8_t, int8_t, int32_t>(a, k, b, trans_b ? k : n, trans_b,
                                        c, n, m, n, k);
}

void
conv2dInt8Into(const Int8Tensor &input, const Int8Tensor &weight,
               const Conv2dParams &params, int64_t batch0, int64_t batches,
               Int32Tensor *out)
{
    convBlockedInto<int8_t, int8_t, int32_t>(input, weight, nullptr,
                                             params, Activation::kNone,
                                             batch0, batches, out);
}

Int32Tensor
conv2dDiffInt16(const Int16Tensor &input, const Int8Tensor &weight,
                const Conv2dParams &params)
{
    return convBlocked<int16_t, int8_t, int32_t>(input, weight, nullptr,
                                                 params);
}

FloatTensor
add(const FloatTensor &a, const FloatTensor &b)
{
    return zipWithParallel<float>(a, b,
                                  [](float x, float y) { return x + y; });
}

FloatTensor
subtract(const FloatTensor &a, const FloatTensor &b)
{
    return zipWithParallel<float>(a, b,
                                  [](float x, float y) { return x - y; });
}

FloatTensor
multiply(const FloatTensor &a, const FloatTensor &b)
{
    return zipWithParallel<float>(a, b,
                                  [](float x, float y) { return x * y; });
}

FloatTensor
affine(const FloatTensor &x, float scale, float shift)
{
    return mapParallel<float>(
        x, [scale, shift](float v) { return v * scale + shift; });
}

FloatTensor
silu(const FloatTensor &x)
{
    return mapParallel<float>(x, siluScalar);
}

FloatTensor
gelu(const FloatTensor &x)
{
    return mapParallel<float>(x, geluScalar);
}

FloatTensor
softmaxRows(const FloatTensor &x)
{
    DITTO_ASSERT(x.shape().rank() == 2, "softmaxRows expects a matrix");
    const int64_t n = x.shape()[0];
    const int64_t d = x.shape()[1];
    FloatTensor out(x.shape());
    const float *sx = x.data().data();
    float *so = out.data().data();
    parallelFor(0, n, [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
            const float *DITTO_RESTRICT row = sx + r * d;
            float *DITTO_RESTRICT orow = so + r * d;
            float mx = row[0];
            for (int64_t c = 1; c < d; ++c)
                mx = std::max(mx, row[c]);
            float sum = 0.0f;
            for (int64_t c = 0; c < d; ++c) {
                const float e = fastExpf(row[c] - mx);
                orow[c] = e;
                sum += e;
            }
            for (int64_t c = 0; c < d; ++c)
                orow[c] /= sum;
        }
    });
    return out;
}

FloatTensor
groupNorm(const FloatTensor &x, int64_t groups, float eps)
{
    DITTO_ASSERT(x.shape().rank() == 4, "groupNorm expects NCHW");
    const int64_t n = x.shape()[0];
    const int64_t c = x.shape()[1];
    const int64_t h = x.shape()[2];
    const int64_t w = x.shape()[3];
    DITTO_ASSERT(groups > 0 && c % groups == 0,
                 "groups must divide channel count");
    const int64_t span = (c / groups) * h * w; // one group is contiguous
    FloatTensor out(x.shape());
    const float *sx = x.data().data();
    float *so = out.data().data();
    parallelFor(0, n * groups, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i)
            normalizeSpan(sx + i * span, so + i * span, span, eps);
    });
    return out;
}

FloatTensor
layerNorm(const FloatTensor &x, float eps)
{
    DITTO_ASSERT(x.shape().rank() == 2, "layerNorm expects a matrix");
    const int64_t n = x.shape()[0];
    const int64_t d = x.shape()[1];
    FloatTensor out(x.shape());
    const float *sx = x.data().data();
    float *so = out.data().data();
    parallelFor(0, n, [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r)
            normalizeSpan(sx + r * d, so + r * d, d, eps);
    });
    return out;
}

Int32Tensor
addInt32(const Int32Tensor &a, const Int32Tensor &b)
{
    return zipWithParallel<int32_t>(
        a, b, [](int32_t x, int32_t y) { return x + y; });
}

Int16Tensor
subtractInt8(const Int8Tensor &a, const Int8Tensor &b)
{
    DITTO_ASSERT(a.shape() == b.shape(), "difference shape mismatch");
    Int16Tensor out(a.shape());
    const int8_t *DITTO_RESTRICT sa = a.data().data();
    const int8_t *DITTO_RESTRICT sb = b.data().data();
    int16_t *DITTO_RESTRICT so = out.data().data();
    parallelFor(0, a.numel(), kElemGrain, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i)
            so[i] = static_cast<int16_t>(static_cast<int16_t>(sa[i]) -
                                         static_cast<int16_t>(sb[i]));
    });
    return out;
}

} // namespace kernels
} // namespace ditto
