/**
 * @file
 * Dense typed tensor with owned storage.
 */
#ifndef DITTO_TENSOR_TENSOR_H
#define DITTO_TENSOR_TENSOR_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "tensor/shape.h"

namespace ditto {

/**
 * Dense row-major tensor owning its storage.
 *
 * Deliberately minimal: the functional Ditto pipeline only needs typed
 * dense storage, element access, and a few fills. All heavy math lives in
 * the free kernels of tensor/ops.h so each kernel can be tested in
 * isolation.
 */
template <typename T>
class Tensor
{
  public:
    Tensor() = default;

    explicit Tensor(const Shape &shape)
        : shape_(shape), data_(static_cast<size_t>(shape.numel()), T{})
    {}

    Tensor(const Shape &shape, T fill_value)
        : shape_(shape),
          data_(static_cast<size_t>(shape.numel()), fill_value)
    {}

    const Shape &shape() const { return shape_; }
    int64_t numel() const { return shape_.numel(); }

    std::span<T> data() { return std::span<T>(data_); }
    std::span<const T> data() const { return std::span<const T>(data_); }

    T &
    at(int64_t i)
    {
        DITTO_ASSERT(i >= 0 && i < numel(), "flat index out of range");
        return data_[static_cast<size_t>(i)];
    }

    const T &
    at(int64_t i) const
    {
        DITTO_ASSERT(i >= 0 && i < numel(), "flat index out of range");
        return data_[static_cast<size_t>(i)];
    }

    /** 2-D accessor for (rows, cols) matrices. */
    T &
    at(int64_t r, int64_t c)
    {
        DITTO_ASSERT(shape_.rank() == 2, "2-D accessor on non-matrix");
        return data_[static_cast<size_t>(r * shape_.dim(1) + c)];
    }

    const T &
    at(int64_t r, int64_t c) const
    {
        DITTO_ASSERT(shape_.rank() == 2, "2-D accessor on non-matrix");
        return data_[static_cast<size_t>(r * shape_.dim(1) + c)];
    }

    /** 4-D accessor for NCHW feature maps. */
    T &
    at(int64_t n, int64_t c, int64_t h, int64_t w)
    {
        DITTO_ASSERT(shape_.rank() == 4, "4-D accessor on non-NCHW tensor");
        return data_[static_cast<size_t>(
            ((n * shape_.dim(1) + c) * shape_.dim(2) + h) * shape_.dim(3) +
            w)];
    }

    const T &
    at(int64_t n, int64_t c, int64_t h, int64_t w) const
    {
        DITTO_ASSERT(shape_.rank() == 4, "4-D accessor on non-NCHW tensor");
        return data_[static_cast<size_t>(
            ((n * shape_.dim(1) + c) * shape_.dim(2) + h) * shape_.dim(3) +
            w)];
    }

    void
    fill(T value)
    {
        for (auto &v : data_)
            v = value;
    }

    /** Fill with iid normal draws (floating-point tensors only). */
    void
    fillNormal(Rng &rng, double mean = 0.0, double stddev = 1.0)
    {
        static_assert(std::is_floating_point_v<T>,
                      "fillNormal requires a floating-point tensor");
        for (auto &v : data_)
            v = static_cast<T>(rng.normal(mean, stddev));
    }

    /** Fill with iid uniform integer draws in [lo, hi] (integer tensors). */
    void
    fillUniformInt(Rng &rng, int64_t lo, int64_t hi)
    {
        static_assert(std::is_integral_v<T>,
                      "fillUniformInt requires an integer tensor");
        DITTO_ASSERT(hi >= lo, "bad uniform range");
        for (auto &v : data_) {
            v = static_cast<T>(
                lo + static_cast<int64_t>(
                         rng.uniformInt(static_cast<uint64_t>(hi - lo + 1))));
        }
    }

    bool
    operator==(const Tensor &other) const
    {
        return shape_ == other.shape_ && data_ == other.data_;
    }

  private:
    Shape shape_;
    std::vector<T> data_;
};

using FloatTensor = Tensor<float>;
using Int8Tensor = Tensor<int8_t>;
using Int16Tensor = Tensor<int16_t>;
using Int32Tensor = Tensor<int32_t>;

} // namespace ditto

#endif // DITTO_TENSOR_TENSOR_H
