/**
 * @file
 * Tensor shape: a small fixed-capacity list of dimensions.
 */
#ifndef DITTO_TENSOR_SHAPE_H
#define DITTO_TENSOR_SHAPE_H

#include <array>
#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <sstream>
#include <string>

#include "common/logging.h"

namespace ditto {

/**
 * Dense row-major tensor shape with up to four dimensions.
 *
 * Four dimensions cover every tensor in the reproduction: NCHW feature
 * maps, (rows, cols) matrices, and (heads, tokens, dim) attention tensors
 * padded with leading 1s.
 */
class Shape
{
  public:
    static constexpr int kMaxRank = 4;

    Shape() : rank_(0), dims_{} {}

    Shape(std::initializer_list<int64_t> dims) : rank_(0), dims_{}
    {
        DITTO_ASSERT(dims.size() <= kMaxRank, "shape rank above kMaxRank");
        for (int64_t d : dims) {
            DITTO_ASSERT(d > 0, "shape dimensions must be positive");
            dims_[rank_++] = d;
        }
    }

    int rank() const { return rank_; }

    int64_t
    dim(int i) const
    {
        DITTO_ASSERT(i >= 0 && i < rank_, "shape dim index out of range");
        return dims_[i];
    }

    int64_t operator[](int i) const { return dim(i); }

    /** Total number of elements. */
    int64_t
    numel() const
    {
        int64_t n = 1;
        for (int i = 0; i < rank_; ++i)
            n *= dims_[i];
        return rank_ == 0 ? 0 : n;
    }

    bool
    operator==(const Shape &other) const
    {
        if (rank_ != other.rank_)
            return false;
        for (int i = 0; i < rank_; ++i) {
            if (dims_[i] != other.dims_[i])
                return false;
        }
        return true;
    }

    bool operator!=(const Shape &other) const { return !(*this == other); }

    /** Render as "[a, b, c]" for diagnostics. */
    std::string
    toString() const
    {
        std::ostringstream os;
        os << "[";
        for (int i = 0; i < rank_; ++i)
            os << (i ? ", " : "") << dims_[i];
        os << "]";
        return os.str();
    }

  private:
    int rank_;
    std::array<int64_t, kMaxRank> dims_;
};

} // namespace ditto

#endif // DITTO_TENSOR_SHAPE_H
