/**
 * @file
 * Sparsity-aware difference GEMM — the software mirror of the Ditto
 * accelerator's zero-skip / 4-bit-lane dispatch.
 *
 * The dense kernels in tensor/kernels.h execute a temporal difference
 * operand at full int16 cost even though most of its values are zero
 * (skippable) or fit the signed 4-bit lane. This module executes the
 * same contraction from a *panel encoding plan* (DiffGemmPlan, built in
 * one pass by the software Encoding Unit in quant/encoder.h):
 *
 *  - the K extent of every difference row is cut into panels of
 *    kDiffPanelK elements;
 *  - all-zero panels appear only in the plan's panel table (class Zero)
 *    and are skipped without touching their data;
 *  - panels whose nonzero values all fit the 4-bit lane store those
 *    values as packed nibbles (two per byte) plus one k-offset byte per
 *    entry (class Low4);
 *  - panels containing at least one wider value fall back to verbatim
 *    int16 storage of their nonzero entries (class Full8).
 *
 * Zero *elements* inside Low4/Full8 panels are dropped from the entry
 * streams too, so the executed multiply count equals the nonzero count
 * exactly — the same population the paper's OpCounts tally describes.
 *
 * diffGemm() walks the plan row by row in fixed K order and accumulates
 * into (a copy of) the previous step's int32 output. Work is divided at
 * (row, column-strip) granularity with parallelFor; the K reduction is
 * never split, so results are bitwise identical to the dense path at
 * any thread count. See docs/diff_exec.md.
 */
#ifndef DITTO_TENSOR_DIFF_GEMM_H
#define DITTO_TENSOR_DIFF_GEMM_H

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace ditto {

struct Conv2dParams; // tensor/ops.h

/** Summary class of one K-panel of a difference row. */
enum class PanelClass : uint8_t
{
    Zero = 0,  //!< no nonzero entries: skipped wholesale
    Low4 = 1,  //!< only 4-bit lane entries (packed nibbles)
    Full8 = 2, //!< only wide entries (verbatim int16 fallback)
    Mixed = 3, //!< both lane kinds present
};

/** K extent of one encoding panel (offsets must fit uint8). */
constexpr int64_t kDiffPanelK = 64;

/**
 * One panel's slices of the two entry streams. Lane dispatch is per
 * *element*, exactly like the hardware Encoding Unit: a panel may
 * contribute entries to both the 4-bit lane stream and the wide
 * fallback stream. Panels exist for zero skipping (both counts zero:
 * nothing is stored or executed) and as the work-division granule.
 */
struct PanelRef
{
    int32_t low4Begin = 0;  //!< first entry in the 4-bit lane stream
    int32_t full8Begin = 0; //!< first entry in the wide stream
    uint16_t low4Count = 0;
    uint16_t full8Count = 0;

    bool empty() const { return low4Count == 0 && full8Count == 0; }

    PanelClass
    cls() const
    {
        if (empty())
            return PanelClass::Zero;
        if (full8Count == 0)
            return PanelClass::Low4;
        if (low4Count == 0)
            return PanelClass::Full8;
        return PanelClass::Mixed;
    }
};

/**
 * Panel encoding plan for one difference operand [rows, cols].
 *
 * Entry streams are global: a panel's 4-bit lane entries live at
 * indices [low4Begin, low4Begin+low4Count) of low4Offsets, with the
 * value of entry e packed into nibble (e & 1) of byte
 * low4Nibbles[e >> 1]. Each row's lane entries start at an even index
 * so rows never share a nibble byte (rows can then be encoded in
 * parallel). Wide entries use full8Offsets/full8Values the same way,
 * one int16 per entry.
 *
 * The element tallies below classify every element of the operand by
 * value (quant/bitwidth.h semantics) and coincide with the stream
 * populations (low4Elems lane entries, full8Elems wide entries), so
 * OpCounts accounting is a by-product of encoding.
 */
struct DiffGemmPlan
{
    int64_t rows = 0;   //!< M extent of the difference operand
    int64_t cols = 0;   //!< K extent of the difference operand
    int64_t panelsPerRow = 0;

    std::vector<PanelRef> panels;      //!< rows * panelsPerRow, K order
    std::vector<uint8_t> low4Offsets;  //!< within-panel k offset per entry
    std::vector<uint8_t> low4Nibbles;  //!< packed values, two per byte
    std::vector<uint8_t> full8Offsets; //!< within-panel k offset per entry
    std::vector<int16_t> full8Values;  //!< verbatim wide values

    int64_t zeroElems = 0;  //!< elements classified Zero
    int64_t low4Elems = 0;  //!< elements classified Low4
    int64_t full8Elems = 0; //!< elements classified Full8

    int64_t totalElems() const { return zeroElems + low4Elems + full8Elems; }
    int64_t nonzeroElems() const { return low4Elems + full8Elems; }

    /** Sign-extended value of Low4 entry `e`. */
    int32_t
    low4Value(int64_t e) const
    {
        const uint8_t byte = low4Nibbles[static_cast<size_t>(e >> 1)];
        const uint8_t nib = (e & 1) ? (byte >> 4) : (byte & 0x0F);
        return (static_cast<int32_t>(nib) ^ 8) - 8; // sign-extend 4 bits
    }
};

namespace kernels {

/**
 * Plan-driven sparse difference GEMM.
 *
 * Computes prev + D * op(B) where D is the difference operand described
 * by `plan` ([m, k]) and op(B) is B ([k, n], row-major) or B^T for
 * B:[n, k] when transpose_b. `b` points at the row-major element data;
 * `n` is the output column count. When prev is null the delta alone is
 * returned. Bitwise identical to the dense int16 path at any thread
 * count.
 */
Int32Tensor diffGemm(const DiffGemmPlan &plan, const int8_t *b, int64_t n,
                     bool transpose_b, const Int32Tensor *prev);

/**
 * Sparse scatter convolution delta for one batch.
 *
 * `plan` encodes the *raw* difference slab [Cin, H*W] — no im2col
 * expansion, so the Encoding Unit touches each difference value once
 * instead of K*K times. `wmat_t` points at the OIHW weight viewed as
 * [Cout, Cin*K*K] and transposed to [Cin*K*K, Cout] row-major (cached
 * by DiffConvEngine); row ic*K*K + ky*K + kx holds the output-channel
 * vector for tap (ic, ky, kx). `wrev_t` is the same data regrouped as
 * [Cin*K, K*Cout] with kx *descending* within a row: for stride-1
 * interior pixels the K windows of one kernel row land on K adjacent
 * output pixels, so the whole kernel row becomes a single contiguous
 * K*Cout-wide axpy against a wrev_t row. Boundary pixels (and any
 * stride > 1) take the window-by-window path. Every nonzero
 * difference value is scattered through its valid kernel windows into
 * the pixel-major delta [OH*OW, Cout].
 *
 * Work is divided into output-row bands; each band walks the plan in
 * fixed order and writes only its own output rows, so the result is
 * bitwise identical at any thread count.
 */
Int32Tensor convDiffScatter(const DiffGemmPlan &plan,
                            const int8_t *wmat_t, const int8_t *wrev_t,
                            const Conv2dParams &p, int64_t h, int64_t w);

/**
 * @name Batched plan execution (serving substrate)
 *
 * The batched denoising path carries one encoding plan per request;
 * these entry points execute a whole batch of plans through a single
 * parallelFor dispatch, dividing work across (request, row) /
 * (request, band) pairs so the pool sees the union of all requests'
 * work. Each request's sub-problem keeps exactly the single-plan
 * accumulation order, so results are bitwise identical to per-request
 * calls at any thread count.
 * @{
 */

/** One request's slice of a batched sparse diff GEMM. */
struct DiffGemmBatchItem
{
    const DiffGemmPlan *plan = nullptr;
    /** B operand element data (row-major, orientation per call). */
    const int8_t *b = nullptr;
    /**
     * Output rows [plan->rows, n], row-major. Must be pre-filled with
     * the accumulation base (previous output, or zeros for a bare
     * delta); rows the plan leaves untouched keep their base values.
     */
    int32_t *out = nullptr;
};

/**
 * Execute a batch of sparse diff GEMMs: for each item,
 * item.out += D_item * op(B_item) with op as in diffGemm. All items
 * share the output column count `n`.
 */
void diffGemmBatch(std::span<const DiffGemmBatchItem> items, int64_t n,
                   bool transpose_b);

/** One request's slice of a batched scatter convolution. */
struct ConvScatterBatchItem
{
    /** Plan over the request's raw [Cin, H*W] difference slab. */
    const DiffGemmPlan *plan = nullptr;
    /** Pixel-major delta [OH*OW, Cout] to fill (zero-initialized). */
    int32_t *delta = nullptr;
};

/**
 * Batched convDiffScatter: every item scatters through the shared
 * cached weights. Non-pointwise items split into (item, output-row
 * band) tasks; 1x1/stride-1/pad-0 items — serial per slab in the
 * single-plan entry — run item-parallel here.
 */
void convDiffScatterBatch(std::span<const ConvScatterBatchItem> items,
                          const int8_t *wmat_t, const int8_t *wrev_t,
                          const Conv2dParams &p, int64_t h, int64_t w);

/** acc[m,n] += delta[n,m]^T in place (tiled). */
void addTransposedInt32InPlace(int32_t *acc, const int32_t *delta,
                               int64_t m, int64_t n);
/** @} */

/** Transposed copy of an int8 matrix (tiled, parallel). */
Int8Tensor transposeInt8(const Int8Tensor &m);

/** out = prev + delta^T for prev:[m, n], delta:[n, m]. */
Int32Tensor addTransposedInt32(const Int32Tensor &prev,
                               const Int32Tensor &delta);

/**
 * Scatter a conv delta back to NCHW: out[b, c, y, x] =
 * prev[b, c, y, x] + delta[b * OH*OW + y*OW + x, c] for
 * prev:[N, C, OH, OW], delta:[N*OH*OW, C].
 */
Int32Tensor addConvDelta(const Int32Tensor &prev_out,
                         const Int32Tensor &delta);

/**
 * addConvDelta restricted to the batch slabs [batch0, batch0 + batches)
 * of prev_out, written into the same slabs of `out` (other slabs
 * untouched). The delta may be *compacted*: slab batch0 + i of the
 * output reads delta slab delta_batch0 + i, so callers that only
 * scattered a subset of slabs pass a delta holding just those.
 * prev_out:[N, C, OH, OW], delta:[M*OH*OW, C] with
 * delta_batch0 + batches <= M.
 */
void addConvDeltaInto(const Int32Tensor &prev_out, const Int32Tensor &delta,
                      int64_t batch0, int64_t batches,
                      int64_t delta_batch0, Int32Tensor *out);

} // namespace kernels
} // namespace ditto

#endif // DITTO_TENSOR_DIFF_GEMM_H
