/**
 * @file
 * Numeric kernels over dense tensors.
 *
 * These entry points are the functional substrate for the Ditto
 * reproduction: every quantized / difference-processed execution path
 * is validated against them. They forward to the blocked, parallel
 * kernel library in tensor/kernels.h; the original scalar triple-loop
 * implementations are retained in ditto::naive as reference kernels
 * for parity tests and speedup baselines. The paper's performance
 * claims are still evaluated by the cycle-level hardware model in
 * src/hw — these kernels just make the functional pipeline fast.
 */
#ifndef DITTO_TENSOR_OPS_H
#define DITTO_TENSOR_OPS_H

#include <cstdint>
#include <span>

#include "tensor/diff_gemm.h"
#include "tensor/tensor.h"

namespace ditto {

/** Parameters of a 2-D convolution (NCHW activations, OIHW weights). */
struct Conv2dParams
{
    int64_t inChannels = 0;
    int64_t outChannels = 0;
    int64_t kernel = 1;   //!< square kernel size
    int64_t stride = 1;
    int64_t padding = 0;

    /** Output spatial size for an input of extent `in`. */
    int64_t
    outExtent(int64_t in) const
    {
        return (in + 2 * padding - kernel) / stride + 1;
    }
};

/**
 * @name Floating-point reference kernels
 * @{
 */

/** C = A * B for row-major matrices A:[m,k], B:[k,n]. */
FloatTensor matmul(const FloatTensor &a, const FloatTensor &b);

/** C = A * B^T for row-major matrices A:[m,k], B:[n,k]. */
FloatTensor matmulTransposed(const FloatTensor &a, const FloatTensor &b);

/** 2-D convolution; input NCHW, weight OIHW, optional bias [O]. */
FloatTensor conv2d(const FloatTensor &input, const FloatTensor &weight,
                   const FloatTensor *bias, const Conv2dParams &params);

/** Fully-connected layer: y = x W^T + b; x:[n,in], W:[out,in], b:[out]. */
FloatTensor fullyConnected(const FloatTensor &input, const FloatTensor &weight,
                           const FloatTensor *bias);

/** Elementwise sum; shapes must match. */
FloatTensor add(const FloatTensor &a, const FloatTensor &b);

/** Elementwise difference a - b; shapes must match. */
FloatTensor subtract(const FloatTensor &a, const FloatTensor &b);

/** Elementwise product; shapes must match. */
FloatTensor multiply(const FloatTensor &a, const FloatTensor &b);

/** Scale-and-shift: y = x * scale + shift (scalars). */
FloatTensor affine(const FloatTensor &x, float scale, float shift);

/** SiLU activation x * sigmoid(x). */
FloatTensor silu(const FloatTensor &x);

/** GeLU activation (tanh approximation, as used by DiT/Latte). */
FloatTensor gelu(const FloatTensor &x);

/** Row-wise softmax over the last dimension of a matrix [n, d]. */
FloatTensor softmaxRows(const FloatTensor &x);

/**
 * Group normalization over NCHW input.
 *
 * @param groups number of channel groups; must divide C.
 * @param eps numerical-stability epsilon.
 */
FloatTensor groupNorm(const FloatTensor &x, int64_t groups,
                      float eps = 1e-5f);

/** Layer normalization over the last dimension of a matrix [n, d]. */
FloatTensor layerNorm(const FloatTensor &x, float eps = 1e-5f);

/** @} */

/**
 * @name Integer kernels (quantized execution)
 *
 * Inputs are int8 codes (activation) x int8 codes (weight); accumulation
 * in int32. The caller owns scales; these kernels are pure integer math
 * so the Ditto difference-processing equivalence can be checked exactly.
 * @{
 */

/** C = A * B, int8 x int8 -> int32. A:[m,k], B:[k,n]. */
Int32Tensor matmulInt8(const Int8Tensor &a, const Int8Tensor &b);

/** C = A * B^T, int8 x int8 -> int32. A:[m,k], B:[n,k]. */
Int32Tensor matmulTransposedInt8(const Int8Tensor &a, const Int8Tensor &b);

/** Integer 2-D convolution; input NCHW int8, weight OIHW int8 -> int32. */
Int32Tensor conv2dInt8(const Int8Tensor &input, const Int8Tensor &weight,
                       const Conv2dParams &params);

/** Integer fully-connected: y = x W^T; x:[n,in], W:[out,in] -> int32. */
Int32Tensor fullyConnectedInt8(const Int8Tensor &input,
                               const Int8Tensor &weight);

/**
 * Integer matmul where the left operand is given as int16 codes.
 *
 * Temporal differences of int8 codes live in [-255, 255] and therefore
 * need more than 8 bits in the worst case; the hardware models them as
 * (high, low) 4-bit slices, and this reference kernel as int16.
 */
Int32Tensor matmulDiffInt16(const Int16Tensor &a, const Int8Tensor &b);

/** Like matmulDiffInt16 but with the right operand transposed: B:[n,k]. */
Int32Tensor matmulTransposedDiffInt16(const Int16Tensor &a,
                                      const Int8Tensor &b);

/** Integer convolution with int16 difference input. */
Int32Tensor conv2dDiffInt16(const Int16Tensor &input,
                            const Int8Tensor &weight,
                            const Conv2dParams &params);

/** Integer fully-connected with int16 difference input. */
Int32Tensor fullyConnectedDiffInt16(const Int16Tensor &input,
                                    const Int8Tensor &weight);

/** Elementwise int32 sum; shapes must match. */
Int32Tensor addInt32(const Int32Tensor &a, const Int32Tensor &b);

/** Elementwise difference of int8 codes, widened to int16. */
Int16Tensor subtractInt8(const Int8Tensor &a, const Int8Tensor &b);

/** @} */

/**
 * @name Plan-driven sparse difference execution
 *
 * The fast path for every QuantDitto layer: the software Encoding Unit
 * (quant/encoder.h) classifies a difference operand into a panel plan
 * (tensor/diff_gemm.h) and these entry points execute it, skipping
 * zero values and reading 4-bit lane panels from packed nibbles. All
 * are bitwise identical to the dense matmul*DiffInt16 kernels at any
 * thread count; docs/diff_exec.md has the full story.
 * @{
 */

/** prev + D * B for the plan's operand D:[m,k] and B:[k,n]. */
Int32Tensor matmulDiffPlan(const DiffGemmPlan &plan, const Int8Tensor &b,
                           const Int32Tensor *prev = nullptr);

/** prev + D * B^T for B:[n,k] (weight-stationary convention). */
Int32Tensor matmulTransposedDiffPlan(const DiffGemmPlan &plan,
                                     const Int8Tensor &b,
                                     const Int32Tensor *prev = nullptr);

/**
 * Sparse conv delta for one batch: `plan` encodes the raw difference
 * slab [Cin, H*W] (no im2col expansion); `wmat_t` is the OIHW weight
 * viewed as [Cout, Cin*K*K], transposed, and `wrev_t` its kx-reversed
 * regrouping for the stride-1 interior fast path — see
 * kernels::convDiffScatter. Returns pixel-major [OH*OW, Cout].
 */
Int32Tensor convDeltaDiffPlan(const DiffGemmPlan &plan,
                              const Int8Tensor &wmat_t,
                              const Int8Tensor &wrev_t,
                              const Conv2dParams &p, int64_t h, int64_t w);

/**
 * Transposed copy of an int8 matrix. Weight-stationary engines cache
 * the transposed weight once so every diff step runs the plan against
 * contiguous B rows without per-call packing.
 */
Int8Tensor transposeInt8(const Int8Tensor &m);

/** prev[m,n] + delta[n,m]^T. */
Int32Tensor addTransposedInt32(const Int32Tensor &prev,
                               const Int32Tensor &delta);

/** prev[N,C,OH,OW] + pixel-major conv delta [N*OH*OW, C]. */
Int32Tensor addConvDeltaInt32(const Int32Tensor &prev_out,
                              const Int32Tensor &delta);

/** @} */

/**
 * @name Batched plan execution (serving layer)
 *
 * Stacked-tensor conveniences over kernels::diffGemmBatch /
 * kernels::convDiffScatterBatch for callers whose slabs all take the
 * diff path: one plan per request, executed through a single kernel
 * dispatch, batch folded into the GEMM M dimension (row slabs) or
 * conv batch slabs. The engines' runBatch methods, whose slabs mix
 * per-request direct/diff decisions, drive the kernels:: entry points
 * directly (DiffConvEngine::runDiff routes its multi-batch scatter
 * through convDeltaDiffPlanBatch). Bitwise identical to per-plan
 * calls at any thread count and batch size.
 * @{
 */

/**
 * Row-stacked batched diff GEMM against one shared weight-stationary
 * operand: slab i of the result is prev_slab_i + D_i * B. All plans
 * must share the K extent b.shape()[0]; the result stacks the plans'
 * row blocks. `prev`, when given, is the stacked previous output.
 */
Int32Tensor matmulDiffPlanBatch(std::span<const DiffGemmPlan> plans,
                                const Int8Tensor &b,
                                const Int32Tensor *prev = nullptr);

/**
 * Batched sparse conv delta: one plan per batch slab, shared cached
 * weights (convDeltaDiffPlan's layout). Returns the stacked pixel-major
 * delta [count*OH*OW, Cout].
 */
Int32Tensor convDeltaDiffPlanBatch(std::span<const DiffGemmPlan> plans,
                                   const Int8Tensor &wmat_t,
                                   const Int8Tensor &wrev_t,
                                   const Conv2dParams &p, int64_t h,
                                   int64_t w);

/** @} */

/**
 * Scalar reference kernels.
 *
 * The original clarity-first triple loops. The blocked kernels in
 * tensor/kernels.h are parity-tested against these (bitwise for the
 * integer kernels, tight epsilon for float), and bench_kernels
 * measures its speedups relative to them. Not used on any hot path.
 */
namespace naive {

FloatTensor matmul(const FloatTensor &a, const FloatTensor &b);
FloatTensor matmulTransposed(const FloatTensor &a, const FloatTensor &b);
FloatTensor conv2d(const FloatTensor &input, const FloatTensor &weight,
                   const FloatTensor *bias, const Conv2dParams &params);
FloatTensor fullyConnected(const FloatTensor &input,
                           const FloatTensor &weight,
                           const FloatTensor *bias);
FloatTensor silu(const FloatTensor &x);
FloatTensor gelu(const FloatTensor &x);
FloatTensor softmaxRows(const FloatTensor &x);
FloatTensor groupNorm(const FloatTensor &x, int64_t groups,
                      float eps = 1e-5f);
FloatTensor layerNorm(const FloatTensor &x, float eps = 1e-5f);
Int32Tensor matmulInt8(const Int8Tensor &a, const Int8Tensor &b);
Int32Tensor matmulTransposedInt8(const Int8Tensor &a, const Int8Tensor &b);
Int32Tensor conv2dInt8(const Int8Tensor &input, const Int8Tensor &weight,
                       const Conv2dParams &params);
Int32Tensor fullyConnectedInt8(const Int8Tensor &input,
                               const Int8Tensor &weight);
Int32Tensor matmulDiffInt16(const Int16Tensor &a, const Int8Tensor &b);
Int32Tensor matmulTransposedDiffInt16(const Int16Tensor &a,
                                      const Int8Tensor &b);
Int32Tensor conv2dDiffInt16(const Int16Tensor &input,
                            const Int8Tensor &weight,
                            const Conv2dParams &params);
Int32Tensor fullyConnectedDiffInt16(const Int16Tensor &input,
                                    const Int8Tensor &weight);

} // namespace naive

} // namespace ditto

#endif // DITTO_TENSOR_OPS_H
