/**
 * @file
 * Runtime-dispatched SIMD micro-kernels for the three hottest integer
 * primitives (see docs/simd.md):
 *
 *  1. the packed-panel integer GEMM micro-kernel (int8 GEMM and the
 *     dense int16-difference GEMM share it),
 *  2. the diff-GEMM 4-bit nibble-lane group axpy (decode + widen +
 *     multiply-accumulate in-register),
 *  3. the wide-lane difference axpy used by the diff GEMM's Full8
 *     entries and the scatter diff-conv fast paths.
 *
 * A KernelTable holds one function pointer per primitive. The active
 * table is resolved once at first use from the host's CPU features
 * (common/cpu.h) and the DITTO_SIMD environment knob
 * (auto/avx2/avx512/neon/generic), and logged. Hand-written AVX2,
 * AVX-512 (VNNI when available) and NEON variants live in
 * kernels_x86.cc / kernels_neon.cc; the portable fallbacks in
 * kernels_generic.cc preserve the historic generic-vector code paths.
 *
 * Every variant is bit-exact against the generic path: all three
 * primitives are pure integer arithmetic, where reassociation is
 * exact, and the narrow-lane intermediates (the int16 lane sums of
 * primitive 2) are bounded by construction so no variant saturates or
 * wraps differently (tests/test_kernels.cc SimdDispatch suite asserts
 * bitwise equality per level, including 1-vs-N-thread determinism).
 *
 * Integer GEMM pair-packed panel layout
 * -------------------------------------
 * When a table provides gemmMicroPairs, the GEMM driver packs the
 * integer operands as int16 in K-pair-interleaved order instead of
 * widening them to int32 (tensor/kernels.cc):
 *
 *   bp[p * 2*kGemmNr + j*2 + s] = B[2p + s, j]   (s = 0, 1)
 *   ap[p * 2*kGemmMr + r*2 + s] = A[r, 2p + s]
 *
 * so one 32-bit lane of a B vector holds the (k, k+1) pair of one
 * output column and a 32-bit broadcast of ap yields the matching A
 * pair — exactly the operand shape of vpmaddwd / vpdpwssd (x86) and
 * of a de-interleaving ld2 + vmlal pair (NEON). The K extent is
 * padded to even with zero pairs; zeros contribute exact zeros.
 * Operand values are at most 8 bits on at least one side of every
 * product (weights/codes are int8), so a pair's int32 dot is at most
 * 2 * 128 * 32768 = 2^23 in magnitude — exact in int32.
 */
#ifndef DITTO_TENSOR_SIMD_SIMD_H
#define DITTO_TENSOR_SIMD_SIMD_H

#include <cstdint>
#include <vector>

namespace ditto {
namespace simd {

/** Micro-tile extents of the integer GEMM micro-kernel (must match
 *  the driver's kMr/kNr in tensor/kernels.cc). */
constexpr int64_t kGemmMr = 4;
constexpr int64_t kGemmNr = 16;

/** Entries per nibble-lane group (must match kLow4Group in
 *  tensor/diff_gemm.cc). */
constexpr int64_t kLow4Group = 8;

/** Dispatchable ISA level, in ascending preference order. */
enum class Level : uint8_t
{
    kGeneric = 0, //!< portable C++ / compiler autovectorization
    kNeon = 1,    //!< AArch64 Advanced SIMD
    kAvx2 = 2,    //!< x86 AVX2
    kAvx512 = 3,  //!< x86 AVX-512 F+BW+VL (VNNI micro-kernel if present)
};

/** Lower-case level name, the DITTO_SIMD vocabulary. */
const char *levelName(Level level);

/** One ISA's implementations of the dispatched primitives. */
struct KernelTable
{
    Level level = Level::kGeneric;

    /**
     * Integer GEMM micro-kernel over pair-packed int16 panels (layout
     * above): acc[r * kGemmNr + j] += sum over the 2*kPairs packed K
     * values of A[r, k] * B[k, j]. Null means the GEMM driver keeps
     * its portable int32-widened panels and generic micro-kernel.
     */
    void (*gemmMicroPairs)(int64_t kPairs, const int16_t *ap,
                           const int16_t *bp, int32_t *acc) = nullptr;

    /**
     * Nibble-lane group axpy: crow[j] += t(j) where t(j) is the int16
     * sum of vs[g] * bs[g][j] over the kLow4Group decoded 4-bit lane
     * values (|vs| <= 8, so |t| <= 8 * 8 * 127 — never saturates).
     * The int16 intermediate is the software analogue of the paper's
     * narrow multiplier lane and must be computed exactly as written
     * (it is in every variant: integer math is exact).
     */
    void (*low4GroupAxpy)(const int16_t *vs,
                          const int8_t *const *bs, int32_t *crow,
                          int64_t n) = nullptr;

    /**
     * Wide-lane difference axpy: crow[j] += v * brow[j] with v any
     * int16-ranged value. Serves the diff GEMM's Full8 single entries
     * and both scatter diff-conv fast paths (interior kernel-row axpy
     * and the pointwise per-pixel axpy).
     */
    void (*diffAxpy)(int32_t v, const int8_t *brow, int32_t *crow,
                     int64_t n) = nullptr;
};

/** The active table (resolved once at first use, then cached). */
const KernelTable &active();

/** Level of the active table. */
Level activeLevel();

/**
 * Levels usable on this host, ascending (kGeneric always included).
 */
std::vector<Level> availableLevels();

/**
 * Pin the dispatch to `level` (test/bench hook, like
 * setThreadCount). Panics if the host cannot execute that level.
 * Production code should use the DITTO_SIMD environment knob instead.
 */
void setLevel(Level level);

/** Drop a setLevel pin and re-resolve from DITTO_SIMD / the host. */
void resetLevel();

/** Table for one level (panics if unavailable on this host). */
const KernelTable &tableFor(Level level);

/** @name Per-ISA table providers (internal wiring)
 *  Null table pointer means the ISA is not compiled in. @{ */
const KernelTable *genericTable();
const KernelTable *avx2Table();   //!< null off x86 / without AVX2 build
const KernelTable *avx512Table(); //!< null off x86; VNNI micro if detected
const KernelTable *neonTable();   //!< null off AArch64
/** @} */

} // namespace simd
} // namespace ditto

#endif // DITTO_TENSOR_SIMD_SIMD_H
