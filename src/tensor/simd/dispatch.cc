/**
 * @file
 * SIMD dispatch resolution: host features + DITTO_SIMD -> KernelTable.
 *
 * Resolution happens once, at the first kernel invocation that
 * consults simd::active(); the chosen level is logged alongside the
 * detected host features so every benchmark log and CI run records
 * the code path it measured. setLevel()/resetLevel() exist for the
 * parity tests and benches, mirroring setThreadCount().
 */
#include "tensor/simd/simd.h"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "common/cpu.h"
#include "common/env.h"
#include "common/logging.h"

namespace ditto {
namespace simd {

namespace {

/** Table provider for a level, or null when not executable here. */
const KernelTable *
providerFor(Level level)
{
    const CpuFeatures &f = cpuFeatures();
    switch (level) {
      case Level::kGeneric:
        return genericTable();
      case Level::kNeon:
        return f.neon ? neonTable() : nullptr;
      case Level::kAvx2:
        return f.avx2 ? avx2Table() : nullptr;
      case Level::kAvx512:
        return f.avx512 ? avx512Table() : nullptr;
    }
    return nullptr;
}

/** Best level the host can execute (auto resolution). */
Level
bestLevel()
{
    for (Level l : {Level::kAvx512, Level::kAvx2, Level::kNeon})
        if (providerFor(l))
            return l;
    return Level::kGeneric;
}

/** DITTO_SIMD value -> requested level; auto/invalid -> bestLevel. */
Level
resolveFromEnv()
{
    const std::string req = env::readString("DITTO_SIMD", "auto");
    if (req == "auto")
        return bestLevel();
    for (Level l : {Level::kGeneric, Level::kNeon, Level::kAvx2,
                    Level::kAvx512}) {
        if (req == levelName(l)) {
            if (providerFor(l))
                return l;
            std::fprintf(stderr,
                         "[ditto] DITTO_SIMD=%s not executable on this "
                         "host (features: %s); using %s\n",
                         req.c_str(), cpuFeatureSummary().c_str(),
                         levelName(bestLevel()));
            return bestLevel();
        }
    }
    std::fprintf(stderr,
                 "[ditto] ignoring invalid DITTO_SIMD=\"%s\" "
                 "(auto/generic/neon/avx2/avx512); using %s\n",
                 req.c_str(), levelName(bestLevel()));
    return bestLevel();
}

std::mutex g_mutex;
std::atomic<const KernelTable *> g_active{nullptr};

const KernelTable &
resolve()
{
    std::unique_lock<std::mutex> lock(g_mutex);
    const KernelTable *t = g_active.load(std::memory_order_acquire);
    if (t)
        return *t;
    const Level level = resolveFromEnv();
    t = providerFor(level);
    DITTO_ASSERT(t, "resolved SIMD level has no table");
    std::fprintf(stderr,
                 "[ditto] simd dispatch: %s (host features: %s)\n",
                 levelName(level), cpuFeatureSummary().c_str());
    g_active.store(t, std::memory_order_release);
    return *t;
}

} // namespace

const char *
levelName(Level level)
{
    switch (level) {
      case Level::kGeneric:
        return "generic";
      case Level::kNeon:
        return "neon";
      case Level::kAvx2:
        return "avx2";
      case Level::kAvx512:
        return "avx512";
    }
    return "unknown";
}

const KernelTable &
active()
{
    const KernelTable *t = g_active.load(std::memory_order_acquire);
    return t ? *t : resolve();
}

Level
activeLevel()
{
    return active().level;
}

std::vector<Level>
availableLevels()
{
    std::vector<Level> out;
    for (Level l : {Level::kGeneric, Level::kNeon, Level::kAvx2,
                    Level::kAvx512})
        if (providerFor(l))
            out.push_back(l);
    return out;
}

const KernelTable &
tableFor(Level level)
{
    const KernelTable *t = providerFor(level);
    DITTO_ASSERT(t, "SIMD level '" << levelName(level)
                                   << "' is not available on this host");
    return *t;
}

void
setLevel(Level level)
{
    const KernelTable &t = tableFor(level);
    std::unique_lock<std::mutex> lock(g_mutex);
    g_active.store(&t, std::memory_order_release);
}

void
resetLevel()
{
    {
        std::unique_lock<std::mutex> lock(g_mutex);
        g_active.store(nullptr, std::memory_order_release);
    }
    resolve();
}

} // namespace simd
} // namespace ditto
