/**
 * @file
 * Hand-written AVX2 and AVX-512 variants of the dispatched primitives.
 *
 * Every function carries a per-function target attribute instead of
 * per-file -m flags, so this TU builds on any x86 toolchain and the
 * dispatch (dispatch.cc) guarantees a function only runs on hosts
 * whose cpuid reports its ISA. On non-x86 builds the table providers
 * return null and the file contributes nothing.
 *
 * Exactness: all three primitives are pure integer arithmetic.
 *  - The pair micro-kernel's vpmaddwd / vpdpwssd computes
 *    a0*b0 + a1*b1 in int32; one factor of every product is int8, so
 *    |pair dot| <= 2 * 128 * 32768 = 2^23 — no saturation, and int32
 *    summation order is irrelevant (exact).
 *  - The nibble-lane group axpy keeps the int16 lane sums of the
 *    generic path verbatim (bounded at 8 * 8 * 127, never wraps).
 *  - The wide-lane axpy multiplies in int32 because v spans the full
 *    int16 range (|v * int8| < 2^22).
 * Scalar tails reuse the exact generic expressions.
 */
#include "tensor/simd/simd.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstring>

#include "common/cpu.h"

namespace ditto {
namespace simd {

namespace {

/** The (k, k+1) int16 pair of micro-row r at pair index p, as one
 *  32-bit broadcast payload (memcpy: ap is only 2-byte aligned). */
inline int32_t
aPair(const int16_t *ap, int64_t p, int64_t r)
{
    int32_t pair;
    std::memcpy(&pair, ap + p * 2 * kGemmMr + r * 2, sizeof(pair));
    return pair;
}

// ---------------------------------------------------------------- AVX2

__attribute__((target("avx2"))) void
gemmMicroPairsAvx2(int64_t kPairs, const int16_t *ap, const int16_t *bp,
                   int32_t *acc)
{
    __m256i c[kGemmMr][2];
    for (int64_t r = 0; r < kGemmMr; ++r) {
        c[r][0] = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(acc + r * kGemmNr));
        c[r][1] = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(acc + r * kGemmNr + 8));
    }
    for (int64_t p = 0; p < kPairs; ++p) {
        const int16_t *brow = bp + p * 2 * kGemmNr;
        const __m256i b0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(brow));
        const __m256i b1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(brow + 16));
        for (int64_t r = 0; r < kGemmMr; ++r) {
            const __m256i a = _mm256_set1_epi32(aPair(ap, p, r));
            c[r][0] = _mm256_add_epi32(c[r][0], _mm256_madd_epi16(a, b0));
            c[r][1] = _mm256_add_epi32(c[r][1], _mm256_madd_epi16(a, b1));
        }
    }
    for (int64_t r = 0; r < kGemmMr; ++r) {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc + r * kGemmNr),
                            c[r][0]);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(acc + r * kGemmNr + 8), c[r][1]);
    }
}

__attribute__((target("avx2"))) void
low4GroupAxpyAvx2(const int16_t *vs, const int8_t *const *bs,
                  int32_t *crow, int64_t n)
{
    __m256i coef[kLow4Group];
    for (int64_t g = 0; g < kLow4Group; ++g)
        coef[g] = _mm256_set1_epi16(vs[g]);
    int64_t j = 0;
    for (; j + 16 <= n; j += 16) {
        __m256i t = _mm256_setzero_si256();
        for (int64_t g = 0; g < kLow4Group; ++g) {
            const __m128i b8 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(bs[g] + j));
            t = _mm256_add_epi16(
                t, _mm256_mullo_epi16(coef[g], _mm256_cvtepi8_epi16(b8)));
        }
        const __m256i lo =
            _mm256_cvtepi16_epi32(_mm256_castsi256_si128(t));
        const __m256i hi =
            _mm256_cvtepi16_epi32(_mm256_extracti128_si256(t, 1));
        __m256i *c0 = reinterpret_cast<__m256i *>(crow + j);
        __m256i *c1 = reinterpret_cast<__m256i *>(crow + j + 8);
        _mm256_storeu_si256(c0,
                            _mm256_add_epi32(_mm256_loadu_si256(c0), lo));
        _mm256_storeu_si256(c1,
                            _mm256_add_epi32(_mm256_loadu_si256(c1), hi));
    }
    for (; j < n; ++j) {
        int16_t t = 0;
        for (int64_t g = 0; g < kLow4Group; ++g)
            t = static_cast<int16_t>(
                t + vs[g] * static_cast<int16_t>(bs[g][j]));
        crow[j] += t;
    }
}

__attribute__((target("avx2"))) void
diffAxpyAvx2(int32_t v, const int8_t *brow, int32_t *crow, int64_t n)
{
    const __m256i vv = _mm256_set1_epi32(v);
    int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m128i b8 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(brow + j));
        const __m256i prod =
            _mm256_mullo_epi32(vv, _mm256_cvtepi8_epi32(b8));
        __m256i *c = reinterpret_cast<__m256i *>(crow + j);
        _mm256_storeu_si256(c,
                            _mm256_add_epi32(_mm256_loadu_si256(c), prod));
    }
    for (; j < n; ++j)
        crow[j] += v * static_cast<int32_t>(brow[j]);
}

// ------------------------------------------------------------- AVX-512

__attribute__((target("avx512f,avx512bw,avx512vl"))) void
gemmMicroPairsAvx512(int64_t kPairs, const int16_t *ap, const int16_t *bp,
                     int32_t *acc)
{
    __m512i c[kGemmMr];
    for (int64_t r = 0; r < kGemmMr; ++r)
        c[r] = _mm512_loadu_si512(acc + r * kGemmNr);
    for (int64_t p = 0; p < kPairs; ++p) {
        const __m512i b = _mm512_loadu_si512(bp + p * 2 * kGemmNr);
        for (int64_t r = 0; r < kGemmMr; ++r) {
            const __m512i a = _mm512_set1_epi32(aPair(ap, p, r));
            c[r] = _mm512_add_epi32(c[r], _mm512_madd_epi16(a, b));
        }
    }
    for (int64_t r = 0; r < kGemmMr; ++r)
        _mm512_storeu_si512(acc + r * kGemmNr, c[r]);
}

__attribute__((target("avx512f,avx512bw,avx512vl,avx512vnni"))) void
gemmMicroPairsAvx512Vnni(int64_t kPairs, const int16_t *ap,
                         const int16_t *bp, int32_t *acc)
{
    __m512i c[kGemmMr];
    for (int64_t r = 0; r < kGemmMr; ++r)
        c[r] = _mm512_loadu_si512(acc + r * kGemmNr);
    for (int64_t p = 0; p < kPairs; ++p) {
        const __m512i b = _mm512_loadu_si512(bp + p * 2 * kGemmNr);
        for (int64_t r = 0; r < kGemmMr; ++r) {
            const __m512i a = _mm512_set1_epi32(aPair(ap, p, r));
            c[r] = _mm512_dpwssd_epi32(c[r], a, b);
        }
    }
    for (int64_t r = 0; r < kGemmMr; ++r)
        _mm512_storeu_si512(acc + r * kGemmNr, c[r]);
}

__attribute__((target("avx512f,avx512bw,avx512vl"))) void
low4GroupAxpyAvx512(const int16_t *vs, const int8_t *const *bs,
                    int32_t *crow, int64_t n)
{
    __m512i coef[kLow4Group];
    for (int64_t g = 0; g < kLow4Group; ++g)
        coef[g] = _mm512_set1_epi16(vs[g]);
    int64_t j = 0;
    for (; j + 32 <= n; j += 32) {
        __m512i t = _mm512_setzero_si512();
        for (int64_t g = 0; g < kLow4Group; ++g) {
            const __m256i b8 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(bs[g] + j));
            t = _mm512_add_epi16(
                t, _mm512_mullo_epi16(coef[g], _mm512_cvtepi8_epi16(b8)));
        }
        const __m512i lo =
            _mm512_cvtepi16_epi32(_mm512_castsi512_si256(t));
        const __m512i hi =
            _mm512_cvtepi16_epi32(_mm512_extracti64x4_epi64(t, 1));
        _mm512_storeu_si512(crow + j,
                            _mm512_add_epi32(
                                _mm512_loadu_si512(crow + j), lo));
        _mm512_storeu_si512(crow + j + 16,
                            _mm512_add_epi32(
                                _mm512_loadu_si512(crow + j + 16), hi));
    }
    for (; j < n; ++j) {
        int16_t t = 0;
        for (int64_t g = 0; g < kLow4Group; ++g)
            t = static_cast<int16_t>(
                t + vs[g] * static_cast<int16_t>(bs[g][j]));
        crow[j] += t;
    }
}

__attribute__((target("avx512f,avx512bw,avx512vl"))) void
diffAxpyAvx512(int32_t v, const int8_t *brow, int32_t *crow, int64_t n)
{
    const __m512i vv = _mm512_set1_epi32(v);
    int64_t j = 0;
    for (; j + 16 <= n; j += 16) {
        const __m128i b8 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(brow + j));
        const __m512i prod =
            _mm512_mullo_epi32(vv, _mm512_cvtepi8_epi32(b8));
        _mm512_storeu_si512(crow + j,
                            _mm512_add_epi32(
                                _mm512_loadu_si512(crow + j), prod));
    }
    for (; j < n; ++j)
        crow[j] += v * static_cast<int32_t>(brow[j]);
}

const KernelTable kAvx2Table = {
    Level::kAvx2,
    &gemmMicroPairsAvx2,
    &low4GroupAxpyAvx2,
    &diffAxpyAvx2,
};

const KernelTable kAvx512Table = {
    Level::kAvx512,
    &gemmMicroPairsAvx512,
    &low4GroupAxpyAvx512,
    &diffAxpyAvx512,
};

const KernelTable kAvx512VnniTable = {
    Level::kAvx512,
    &gemmMicroPairsAvx512Vnni,
    &low4GroupAxpyAvx512,
    &diffAxpyAvx512,
};

} // namespace

const KernelTable *
avx2Table()
{
    return &kAvx2Table;
}

const KernelTable *
avx512Table()
{
    // VNNI swaps in vpdpwssd for the madd+add pair; same exact result.
    return cpuFeatures().avx512vnni ? &kAvx512VnniTable : &kAvx512Table;
}

} // namespace simd
} // namespace ditto

#else // !x86

namespace ditto {
namespace simd {

const KernelTable *
avx2Table()
{
    return nullptr;
}

const KernelTable *
avx512Table()
{
    return nullptr;
}

} // namespace simd
} // namespace ditto

#endif
