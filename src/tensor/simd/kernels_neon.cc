/**
 * @file
 * AArch64 Advanced SIMD (NEON) variants of the dispatched primitives.
 *
 * NEON is architecturally mandatory on AArch64, so this TU compiles
 * its kernels whenever the target is AArch64 and the provider is
 * unconditional there; on every other architecture neonTable()
 * returns null and the dispatch never offers the level.
 *
 * Exactness mirrors kernels_x86.cc: the pair micro-kernel and the
 * wide-lane axpy use widening multiply-accumulates (vmlal) whose
 * int32 products are exact (one int8 factor), and the nibble-lane
 * group axpy keeps the generic path's bounded int16 lane sums
 * verbatim. Scalar tails reuse the exact generic expressions.
 */
#include "tensor/simd/simd.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace ditto {
namespace simd {

namespace {

void
gemmMicroPairsNeon(int64_t kPairs, const int16_t *ap, const int16_t *bp,
                   int32_t *acc)
{
    int32x4_t c[kGemmMr][4];
    for (int64_t r = 0; r < kGemmMr; ++r)
        for (int64_t q = 0; q < 4; ++q)
            c[r][q] = vld1q_s32(acc + r * kGemmNr + q * 4);
    for (int64_t p = 0; p < kPairs; ++p) {
        // vld2 de-interleaves the packed (k, k+1) pairs back into an
        // even lane (B[2p, j]) and an odd lane (B[2p+1, j]) per 8
        // columns; vmlal then widens each int16 product into the
        // int32 accumulators exactly.
        const int16_t *brow = bp + p * 2 * kGemmNr;
        const int16x8x2_t b0 = vld2q_s16(brow);      // columns 0..7
        const int16x8x2_t b1 = vld2q_s16(brow + 16); // columns 8..15
        const int16_t *arow = ap + p * 2 * kGemmMr;
        for (int64_t r = 0; r < kGemmMr; ++r) {
            const int16_t a0 = arow[r * 2];
            const int16_t a1 = arow[r * 2 + 1];
            c[r][0] = vmlal_n_s16(c[r][0], vget_low_s16(b0.val[0]), a0);
            c[r][0] = vmlal_n_s16(c[r][0], vget_low_s16(b0.val[1]), a1);
            c[r][1] = vmlal_n_s16(c[r][1], vget_high_s16(b0.val[0]), a0);
            c[r][1] = vmlal_n_s16(c[r][1], vget_high_s16(b0.val[1]), a1);
            c[r][2] = vmlal_n_s16(c[r][2], vget_low_s16(b1.val[0]), a0);
            c[r][2] = vmlal_n_s16(c[r][2], vget_low_s16(b1.val[1]), a1);
            c[r][3] = vmlal_n_s16(c[r][3], vget_high_s16(b1.val[0]), a0);
            c[r][3] = vmlal_n_s16(c[r][3], vget_high_s16(b1.val[1]), a1);
        }
    }
    for (int64_t r = 0; r < kGemmMr; ++r)
        for (int64_t q = 0; q < 4; ++q)
            vst1q_s32(acc + r * kGemmNr + q * 4, c[r][q]);
}

void
low4GroupAxpyNeon(const int16_t *vs, const int8_t *const *bs,
                  int32_t *crow, int64_t n)
{
    int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
        int16x8_t t = vdupq_n_s16(0);
        for (int64_t g = 0; g < kLow4Group; ++g) {
            const int16x8_t b16 = vmovl_s8(vld1_s8(bs[g] + j));
            t = vmlaq_n_s16(t, b16, vs[g]);
        }
        vst1q_s32(crow + j,
                  vaddw_s16(vld1q_s32(crow + j), vget_low_s16(t)));
        vst1q_s32(crow + j + 4,
                  vaddw_s16(vld1q_s32(crow + j + 4), vget_high_s16(t)));
    }
    for (; j < n; ++j) {
        int16_t t = 0;
        for (int64_t g = 0; g < kLow4Group; ++g)
            t = static_cast<int16_t>(
                t + vs[g] * static_cast<int16_t>(bs[g][j]));
        crow[j] += t;
    }
}

void
diffAxpyNeon(int32_t v, const int8_t *brow, int32_t *crow, int64_t n)
{
    // v spans the full int16 range (widening vmlal keeps the int32
    // product exact); the dispatch contract guarantees no wider v.
    const int16_t v16 = static_cast<int16_t>(v);
    int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const int16x8_t b16 = vmovl_s8(vld1_s8(brow + j));
        vst1q_s32(crow + j,
                  vmlal_n_s16(vld1q_s32(crow + j), vget_low_s16(b16),
                              v16));
        vst1q_s32(crow + j + 4,
                  vmlal_n_s16(vld1q_s32(crow + j + 4),
                              vget_high_s16(b16), v16));
    }
    for (; j < n; ++j)
        crow[j] += v * static_cast<int32_t>(brow[j]);
}

const KernelTable kNeonTable = {
    Level::kNeon,
    &gemmMicroPairsNeon,
    &low4GroupAxpyNeon,
    &diffAxpyNeon,
};

} // namespace

const KernelTable *
neonTable()
{
    return &kNeonTable;
}

} // namespace simd
} // namespace ditto

#else // !AArch64

namespace ditto {
namespace simd {

const KernelTable *
neonTable()
{
    return nullptr;
}

} // namespace simd
} // namespace ditto

#endif
