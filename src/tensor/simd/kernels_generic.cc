/**
 * @file
 * Portable fallback implementations of the dispatched primitives.
 *
 * These are the historic hot-loop bodies (restrict-qualified plain
 * loops the compiler auto-vectorizes), kept as the reference the
 * hand-written ISA variants must match bitwise. The generic table
 * leaves gemmMicroPairs null: without a hand-written micro-kernel the
 * GEMM driver keeps its int32-widened panels and portable
 * vector-extension micro-kernel (tensor/kernels.cc), which is the
 * exact pre-dispatch code path.
 */
#include "tensor/simd/simd.h"

#define DITTO_RESTRICT __restrict__

namespace ditto {
namespace simd {

namespace {

/**
 * Reference nibble-lane group axpy: one int16 lane sum per output
 * column, widened and accumulated once per group (see
 * tensor/diff_gemm.cc for why the int16 intermediate is lossless).
 */
void
low4GroupAxpyGeneric(const int16_t *DITTO_RESTRICT vs,
                     const int8_t *const *DITTO_RESTRICT bs,
                     int32_t *DITTO_RESTRICT crow, int64_t n)
{
    const int8_t *DITTO_RESTRICT b0 = bs[0];
    const int8_t *DITTO_RESTRICT b1 = bs[1];
    const int8_t *DITTO_RESTRICT b2 = bs[2];
    const int8_t *DITTO_RESTRICT b3 = bs[3];
    const int8_t *DITTO_RESTRICT b4 = bs[4];
    const int8_t *DITTO_RESTRICT b5 = bs[5];
    const int8_t *DITTO_RESTRICT b6 = bs[6];
    const int8_t *DITTO_RESTRICT b7 = bs[7];
    for (int64_t j = 0; j < n; ++j) {
        const int16_t t = static_cast<int16_t>(
            vs[0] * static_cast<int16_t>(b0[j]) +
            vs[1] * static_cast<int16_t>(b1[j]) +
            vs[2] * static_cast<int16_t>(b2[j]) +
            vs[3] * static_cast<int16_t>(b3[j]) +
            vs[4] * static_cast<int16_t>(b4[j]) +
            vs[5] * static_cast<int16_t>(b5[j]) +
            vs[6] * static_cast<int16_t>(b6[j]) +
            vs[7] * static_cast<int16_t>(b7[j]));
        crow[j] += t;
    }
}

/** Reference wide-lane axpy: crow[j] += v * brow[j]. */
void
diffAxpyGeneric(int32_t v, const int8_t *DITTO_RESTRICT brow,
                int32_t *DITTO_RESTRICT crow, int64_t n)
{
    for (int64_t j = 0; j < n; ++j)
        crow[j] += v * static_cast<int32_t>(brow[j]);
}

const KernelTable kGenericTable = {
    Level::kGeneric,
    /*gemmMicroPairs=*/nullptr,
    &low4GroupAxpyGeneric,
    &diffAxpyGeneric,
};

} // namespace

const KernelTable *
genericTable()
{
    return &kGenericTable;
}

} // namespace simd
} // namespace ditto
