/**
 * @file
 * Stacked-slab tensor edits.
 *
 * The serving layer stores a batch of requests' tensors stacked along
 * dimension 0: slab i of a tensor holding `batch` slabs is rows
 * [i * d0/batch, (i+1) * d0/batch). These helpers grow/shrink such
 * stacks when requests join or leave; the image stack
 * (serve/batch_rollout.cc) and every BatchDittoState slot (the graph
 * runtime's in runtime/compiled.cc and the parity reference's in
 * core/legacy_unet.cc) edit their slabs through this one
 * implementation, so slab layout can never diverge between them.
 */
#ifndef DITTO_TENSOR_SLAB_H
#define DITTO_TENSOR_SLAB_H

#include <algorithm>
#include <cstdint>

#include "common/logging.h"
#include "tensor/tensor.h"

namespace ditto {
namespace slab {

/** Shape with dimension 0 replaced. */
inline Shape
withDim0(const Shape &s, int64_t d0)
{
    switch (s.rank()) {
      case 1:
        return Shape{d0};
      case 2:
        return Shape{d0, s[1]};
      case 3:
        return Shape{d0, s[1], s[2]};
      case 4:
        return Shape{d0, s[1], s[2], s[3]};
    }
    DITTO_PANIC("unsupported rank");
}

/**
 * Copy of a stack of `batch` slabs with `count` zero slabs appended in
 * one reallocation. The new slabs belong to fresh (unprimed)
 * requests, so they are always written before they are read.
 */
template <typename T>
Tensor<T>
appended(const Tensor<T> &t, int64_t batch, int64_t count = 1)
{
    const int64_t d0 = t.shape()[0];
    DITTO_ASSERT(batch > 0 && count > 0 && d0 % batch == 0,
                 "stacked tensor dim 0 not slab-aligned");
    Tensor<T> grown(withDim0(t.shape(), d0 / batch * (batch + count)));
    std::copy(t.data().begin(), t.data().end(), grown.data().begin());
    return grown;
}

/** Copy of a stack of `batch` slabs with slab `i` removed. */
template <typename T>
Tensor<T>
removed(const Tensor<T> &t, int64_t batch, int64_t i)
{
    const int64_t d0 = t.shape()[0];
    DITTO_ASSERT(batch > 1 && d0 % batch == 0,
                 "stacked tensor dim 0 not slab-aligned");
    DITTO_ASSERT(i >= 0 && i < batch, "slab index out of range");
    const int64_t n = t.numel() / batch;
    Tensor<T> shrunk(withDim0(t.shape(), d0 / batch * (batch - 1)));
    std::copy(t.data().begin(), t.data().begin() + i * n,
              shrunk.data().begin());
    std::copy(t.data().begin() + (i + 1) * n, t.data().end(),
              shrunk.data().begin() + i * n);
    return shrunk;
}

} // namespace slab
} // namespace ditto

#endif // DITTO_TENSOR_SLAB_H
