/**
 * @file
 * Public kernel entry points and the scalar naive:: references.
 *
 * The public functions forward to the blocked, parallel kernels in
 * tensor/kernels.h so every caller (diff engines, attention, MiniUnet,
 * traces, benches) gets the fast substrate with zero call-site churn.
 * The clarity-first triple loops remain below as ditto::naive, the
 * ground truth the fast kernels are parity-tested against.
 */
#include "tensor/ops.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/kernels.h"

namespace ditto {

namespace {

/** Shared im2col-free convolution loop, templated over element types. */
template <typename In, typename W, typename Out>
Tensor<Out>
convLoop(const Tensor<In> &input, const Tensor<W> &weight,
         const Tensor<float> *bias, const Conv2dParams &p)
{
    DITTO_ASSERT(input.shape().rank() == 4, "conv input must be NCHW");
    DITTO_ASSERT(weight.shape().rank() == 4, "conv weight must be OIHW");
    const int64_t n = input.shape()[0];
    const int64_t cin = input.shape()[1];
    const int64_t h = input.shape()[2];
    const int64_t w = input.shape()[3];
    DITTO_ASSERT(cin == p.inChannels, "conv input channels mismatch");
    DITTO_ASSERT(weight.shape()[0] == p.outChannels &&
                 weight.shape()[1] == p.inChannels &&
                 weight.shape()[2] == p.kernel &&
                 weight.shape()[3] == p.kernel,
                 "conv weight shape mismatch");
    const int64_t oh = p.outExtent(h);
    const int64_t ow = p.outExtent(w);
    DITTO_ASSERT(oh > 0 && ow > 0, "conv output would be empty");

    Tensor<Out> out(Shape{n, p.outChannels, oh, ow});
    for (int64_t b = 0; b < n; ++b) {
        for (int64_t oc = 0; oc < p.outChannels; ++oc) {
            for (int64_t oy = 0; oy < oh; ++oy) {
                for (int64_t ox = 0; ox < ow; ++ox) {
                    Out acc = bias
                        ? static_cast<Out>(bias->at(oc)) : Out{0};
                    for (int64_t ic = 0; ic < cin; ++ic) {
                        for (int64_t ky = 0; ky < p.kernel; ++ky) {
                            const int64_t iy =
                                oy * p.stride + ky - p.padding;
                            if (iy < 0 || iy >= h)
                                continue;
                            for (int64_t kx = 0; kx < p.kernel; ++kx) {
                                const int64_t ix =
                                    ox * p.stride + kx - p.padding;
                                if (ix < 0 || ix >= w)
                                    continue;
                                acc += static_cast<Out>(
                                           input.at(b, ic, iy, ix)) *
                                       static_cast<Out>(
                                           weight.at(oc, ic, ky, kx));
                            }
                        }
                    }
                    out.at(b, oc, oy, ox) = acc;
                }
            }
        }
    }
    return out;
}

/** Shared matmul loop: C[m,n] = A[m,k] * B[k,n]. */
template <typename A, typename B, typename Out>
Tensor<Out>
matmulLoop(const Tensor<A> &a, const Tensor<B> &b)
{
    DITTO_ASSERT(a.shape().rank() == 2 && b.shape().rank() == 2,
                 "matmul operands must be matrices");
    const int64_t m = a.shape()[0];
    const int64_t k = a.shape()[1];
    const int64_t n = b.shape()[1];
    DITTO_ASSERT(b.shape()[0] == k, "matmul inner dimensions mismatch");
    Tensor<Out> c(Shape{m, n});
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            Out acc{0};
            for (int64_t x = 0; x < k; ++x)
                acc += static_cast<Out>(a.at(i, x)) *
                       static_cast<Out>(b.at(x, j));
            c.at(i, j) = acc;
        }
    }
    return c;
}

/** Shared transposed matmul loop: C[m,n] = A[m,k] * B[n,k]^T. */
template <typename A, typename B, typename Out>
Tensor<Out>
matmulTransposedLoop(const Tensor<A> &a, const Tensor<B> &b)
{
    DITTO_ASSERT(a.shape().rank() == 2 && b.shape().rank() == 2,
                 "matmul operands must be matrices");
    const int64_t m = a.shape()[0];
    const int64_t k = a.shape()[1];
    const int64_t n = b.shape()[0];
    DITTO_ASSERT(b.shape()[1] == k, "matmul inner dimensions mismatch");
    Tensor<Out> c(Shape{m, n});
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            Out acc{0};
            for (int64_t x = 0; x < k; ++x)
                acc += static_cast<Out>(a.at(i, x)) *
                       static_cast<Out>(b.at(j, x));
            c.at(i, j) = acc;
        }
    }
    return c;
}

} // namespace

//
// Public entry points: blocked, parallel fast paths.
//

FloatTensor
matmul(const FloatTensor &a, const FloatTensor &b)
{
    return kernels::gemm(a, b, /*transpose_b=*/false);
}

FloatTensor
matmulTransposed(const FloatTensor &a, const FloatTensor &b)
{
    return kernels::gemm(a, b, /*transpose_b=*/true);
}

FloatTensor
conv2d(const FloatTensor &input, const FloatTensor &weight,
       const FloatTensor *bias, const Conv2dParams &params)
{
    return kernels::conv2d(input, weight, bias, params);
}

FloatTensor
fullyConnected(const FloatTensor &input, const FloatTensor &weight,
               const FloatTensor *bias)
{
    return kernels::gemm(input, weight, /*transpose_b=*/true, bias);
}

FloatTensor
add(const FloatTensor &a, const FloatTensor &b)
{
    return kernels::add(a, b);
}

FloatTensor
subtract(const FloatTensor &a, const FloatTensor &b)
{
    return kernels::subtract(a, b);
}

FloatTensor
multiply(const FloatTensor &a, const FloatTensor &b)
{
    return kernels::multiply(a, b);
}

FloatTensor
affine(const FloatTensor &x, float scale, float shift)
{
    return kernels::affine(x, scale, shift);
}

FloatTensor
silu(const FloatTensor &x)
{
    return kernels::silu(x);
}

FloatTensor
gelu(const FloatTensor &x)
{
    return kernels::gelu(x);
}

FloatTensor
softmaxRows(const FloatTensor &x)
{
    return kernels::softmaxRows(x);
}

FloatTensor
groupNorm(const FloatTensor &x, int64_t groups, float eps)
{
    return kernels::groupNorm(x, groups, eps);
}

FloatTensor
layerNorm(const FloatTensor &x, float eps)
{
    return kernels::layerNorm(x, eps);
}

Int32Tensor
matmulInt8(const Int8Tensor &a, const Int8Tensor &b)
{
    return kernels::gemmInt8(a, b, /*transpose_b=*/false);
}

Int32Tensor
matmulTransposedInt8(const Int8Tensor &a, const Int8Tensor &b)
{
    return kernels::gemmInt8(a, b, /*transpose_b=*/true);
}

Int32Tensor
conv2dInt8(const Int8Tensor &input, const Int8Tensor &weight,
           const Conv2dParams &params)
{
    return kernels::conv2dInt8(input, weight, params);
}

Int32Tensor
fullyConnectedInt8(const Int8Tensor &input, const Int8Tensor &weight)
{
    return kernels::gemmInt8(input, weight, /*transpose_b=*/true);
}

Int32Tensor
matmulDiffInt16(const Int16Tensor &a, const Int8Tensor &b)
{
    return kernels::gemmDiffInt16(a, b, /*transpose_b=*/false);
}

Int32Tensor
matmulTransposedDiffInt16(const Int16Tensor &a, const Int8Tensor &b)
{
    return kernels::gemmDiffInt16(a, b, /*transpose_b=*/true);
}

Int32Tensor
conv2dDiffInt16(const Int16Tensor &input, const Int8Tensor &weight,
                const Conv2dParams &params)
{
    return kernels::conv2dDiffInt16(input, weight, params);
}

Int32Tensor
fullyConnectedDiffInt16(const Int16Tensor &input, const Int8Tensor &weight)
{
    return kernels::gemmDiffInt16(input, weight, /*transpose_b=*/true);
}

Int32Tensor
addInt32(const Int32Tensor &a, const Int32Tensor &b)
{
    return kernels::addInt32(a, b);
}

Int16Tensor
subtractInt8(const Int8Tensor &a, const Int8Tensor &b)
{
    return kernels::subtractInt8(a, b);
}

Int32Tensor
matmulDiffPlan(const DiffGemmPlan &plan, const Int8Tensor &b,
               const Int32Tensor *prev)
{
    DITTO_ASSERT(b.shape().rank() == 2 && b.shape()[0] == plan.cols,
                 "matmulDiffPlan operand shape mismatch");
    return kernels::diffGemm(plan, b.data().data(), b.shape()[1],
                             /*transpose_b=*/false, prev);
}

Int32Tensor
matmulTransposedDiffPlan(const DiffGemmPlan &plan, const Int8Tensor &b,
                         const Int32Tensor *prev)
{
    DITTO_ASSERT(b.shape().rank() == 2 && b.shape()[1] == plan.cols,
                 "matmulTransposedDiffPlan operand shape mismatch");
    return kernels::diffGemm(plan, b.data().data(), b.shape()[0],
                             /*transpose_b=*/true, prev);
}

Int32Tensor
convDeltaDiffPlan(const DiffGemmPlan &plan, const Int8Tensor &wmat_t,
                  const Int8Tensor &wrev_t, const Conv2dParams &p,
                  int64_t h, int64_t w)
{
    DITTO_ASSERT(wmat_t.shape().rank() == 2 &&
                 wmat_t.shape()[0] == p.inChannels * p.kernel * p.kernel &&
                 wmat_t.shape()[1] == p.outChannels,
                 "convDeltaDiffPlan weight layout mismatch");
    DITTO_ASSERT(wrev_t.numel() == wmat_t.numel(),
                 "convDeltaDiffPlan reversed weight size mismatch");
    return kernels::convDiffScatter(plan, wmat_t.data().data(),
                                    wrev_t.data().data(), p, h, w);
}

Int32Tensor
matmulDiffPlanBatch(std::span<const DiffGemmPlan> plans,
                    const Int8Tensor &b, const Int32Tensor *prev)
{
    DITTO_ASSERT(b.shape().rank() == 2, "matmulDiffPlanBatch needs a matrix");
    const int64_t k = b.shape()[0];
    const int64_t n = b.shape()[1];
    int64_t rows = 0;
    for (const DiffGemmPlan &plan : plans) {
        DITTO_ASSERT(plan.cols == k,
                     "matmulDiffPlanBatch operand shape mismatch");
        rows += plan.rows;
    }
    Int32Tensor out = prev ? *prev : Int32Tensor(Shape{rows, n});
    DITTO_ASSERT(out.shape() == Shape({rows, n}),
                 "matmulDiffPlanBatch previous-output shape mismatch");
    std::vector<kernels::DiffGemmBatchItem> items(plans.size());
    int32_t *base = out.data().data();
    for (size_t i = 0; i < plans.size(); ++i) {
        items[i] = {&plans[i], b.data().data(), base};
        base += plans[i].rows * n;
    }
    kernels::diffGemmBatch(items, n, /*transpose_b=*/false);
    return out;
}

Int32Tensor
convDeltaDiffPlanBatch(std::span<const DiffGemmPlan> plans,
                       const Int8Tensor &wmat_t, const Int8Tensor &wrev_t,
                       const Conv2dParams &p, int64_t h, int64_t w)
{
    DITTO_ASSERT(wmat_t.shape().rank() == 2 &&
                 wmat_t.shape()[0] == p.inChannels * p.kernel * p.kernel &&
                 wmat_t.shape()[1] == p.outChannels,
                 "convDeltaDiffPlanBatch weight layout mismatch");
    DITTO_ASSERT(wrev_t.numel() == wmat_t.numel(),
                 "convDeltaDiffPlanBatch reversed weight size mismatch");
    const int64_t count = static_cast<int64_t>(plans.size());
    const int64_t pix = p.outExtent(h) * p.outExtent(w);
    Int32Tensor delta(Shape{count * pix, p.outChannels});
    std::vector<kernels::ConvScatterBatchItem> items(plans.size());
    for (size_t i = 0; i < plans.size(); ++i)
        items[i] = {&plans[i], delta.data().data() +
                                   static_cast<int64_t>(i) * pix *
                                       p.outChannels};
    kernels::convDiffScatterBatch(items, wmat_t.data().data(),
                                  wrev_t.data().data(), p, h, w);
    return delta;
}

Int8Tensor
transposeInt8(const Int8Tensor &m)
{
    return kernels::transposeInt8(m);
}

Int32Tensor
addTransposedInt32(const Int32Tensor &prev, const Int32Tensor &delta)
{
    return kernels::addTransposedInt32(prev, delta);
}

Int32Tensor
addConvDeltaInt32(const Int32Tensor &prev_out, const Int32Tensor &delta)
{
    return kernels::addConvDelta(prev_out, delta);
}

//
// Scalar reference kernels.
//

namespace naive {

FloatTensor
matmul(const FloatTensor &a, const FloatTensor &b)
{
    return matmulLoop<float, float, float>(a, b);
}

FloatTensor
matmulTransposed(const FloatTensor &a, const FloatTensor &b)
{
    return matmulTransposedLoop<float, float, float>(a, b);
}

FloatTensor
conv2d(const FloatTensor &input, const FloatTensor &weight,
       const FloatTensor *bias, const Conv2dParams &params)
{
    return convLoop<float, float, float>(input, weight, bias, params);
}

FloatTensor
fullyConnected(const FloatTensor &input, const FloatTensor &weight,
               const FloatTensor *bias)
{
    FloatTensor out = matmulTransposedLoop<float, float, float>(input,
                                                                weight);
    if (bias) {
        DITTO_ASSERT(bias->numel() == weight.shape()[0],
                     "fc bias size mismatch");
        for (int64_t r = 0; r < out.shape()[0]; ++r)
            for (int64_t c = 0; c < out.shape()[1]; ++c)
                out.at(r, c) += bias->at(c);
    }
    return out;
}

FloatTensor
silu(const FloatTensor &x)
{
    FloatTensor out(x.shape());
    auto sx = x.data();
    auto so = out.data();
    for (size_t i = 0; i < sx.size(); ++i)
        so[i] = sx[i] / (1.0f + std::exp(-sx[i]));
    return out;
}

FloatTensor
gelu(const FloatTensor &x)
{
    // tanh approximation: 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3)))
    constexpr float kC = 0.7978845608028654f; // sqrt(2/pi)
    FloatTensor out(x.shape());
    auto sx = x.data();
    auto so = out.data();
    for (size_t i = 0; i < sx.size(); ++i) {
        const float v = sx[i];
        so[i] = 0.5f * v *
                (1.0f + std::tanh(kC * (v + 0.044715f * v * v * v)));
    }
    return out;
}

FloatTensor
softmaxRows(const FloatTensor &x)
{
    DITTO_ASSERT(x.shape().rank() == 2, "softmaxRows expects a matrix");
    const int64_t n = x.shape()[0];
    const int64_t d = x.shape()[1];
    FloatTensor out(x.shape());
    for (int64_t r = 0; r < n; ++r) {
        float mx = x.at(r, 0);
        for (int64_t c = 1; c < d; ++c)
            mx = std::max(mx, x.at(r, c));
        float sum = 0.0f;
        for (int64_t c = 0; c < d; ++c) {
            const float e = std::exp(x.at(r, c) - mx);
            out.at(r, c) = e;
            sum += e;
        }
        for (int64_t c = 0; c < d; ++c)
            out.at(r, c) /= sum;
    }
    return out;
}

FloatTensor
groupNorm(const FloatTensor &x, int64_t groups, float eps)
{
    DITTO_ASSERT(x.shape().rank() == 4, "groupNorm expects NCHW");
    const int64_t n = x.shape()[0];
    const int64_t c = x.shape()[1];
    const int64_t h = x.shape()[2];
    const int64_t w = x.shape()[3];
    DITTO_ASSERT(groups > 0 && c % groups == 0,
                 "groups must divide channel count");
    const int64_t gsz = c / groups;
    FloatTensor out(x.shape());
    for (int64_t b = 0; b < n; ++b) {
        for (int64_t g = 0; g < groups; ++g) {
            double mean = 0.0;
            const int64_t count = gsz * h * w;
            for (int64_t ci = g * gsz; ci < (g + 1) * gsz; ++ci)
                for (int64_t y = 0; y < h; ++y)
                    for (int64_t xw = 0; xw < w; ++xw)
                        mean += x.at(b, ci, y, xw);
            mean /= static_cast<double>(count);
            double var = 0.0;
            for (int64_t ci = g * gsz; ci < (g + 1) * gsz; ++ci) {
                for (int64_t y = 0; y < h; ++y) {
                    for (int64_t xw = 0; xw < w; ++xw) {
                        const double d = x.at(b, ci, y, xw) - mean;
                        var += d * d;
                    }
                }
            }
            var /= static_cast<double>(count);
            const float inv =
                1.0f / std::sqrt(static_cast<float>(var) + eps);
            for (int64_t ci = g * gsz; ci < (g + 1) * gsz; ++ci)
                for (int64_t y = 0; y < h; ++y)
                    for (int64_t xw = 0; xw < w; ++xw)
                        out.at(b, ci, y, xw) =
                            (x.at(b, ci, y, xw) -
                             static_cast<float>(mean)) * inv;
        }
    }
    return out;
}

FloatTensor
layerNorm(const FloatTensor &x, float eps)
{
    DITTO_ASSERT(x.shape().rank() == 2, "layerNorm expects a matrix");
    const int64_t n = x.shape()[0];
    const int64_t d = x.shape()[1];
    FloatTensor out(x.shape());
    for (int64_t r = 0; r < n; ++r) {
        double mean = 0.0;
        for (int64_t c = 0; c < d; ++c)
            mean += x.at(r, c);
        mean /= static_cast<double>(d);
        double var = 0.0;
        for (int64_t c = 0; c < d; ++c) {
            const double dv = x.at(r, c) - mean;
            var += dv * dv;
        }
        var /= static_cast<double>(d);
        const float inv = 1.0f / std::sqrt(static_cast<float>(var) + eps);
        for (int64_t c = 0; c < d; ++c)
            out.at(r, c) =
                (x.at(r, c) - static_cast<float>(mean)) * inv;
    }
    return out;
}

Int32Tensor
matmulInt8(const Int8Tensor &a, const Int8Tensor &b)
{
    return matmulLoop<int8_t, int8_t, int32_t>(a, b);
}

Int32Tensor
matmulTransposedInt8(const Int8Tensor &a, const Int8Tensor &b)
{
    return matmulTransposedLoop<int8_t, int8_t, int32_t>(a, b);
}

Int32Tensor
conv2dInt8(const Int8Tensor &input, const Int8Tensor &weight,
           const Conv2dParams &params)
{
    return convLoop<int8_t, int8_t, int32_t>(input, weight, nullptr,
                                             params);
}

Int32Tensor
fullyConnectedInt8(const Int8Tensor &input, const Int8Tensor &weight)
{
    return matmulTransposedLoop<int8_t, int8_t, int32_t>(input, weight);
}

Int32Tensor
matmulDiffInt16(const Int16Tensor &a, const Int8Tensor &b)
{
    return matmulLoop<int16_t, int8_t, int32_t>(a, b);
}

Int32Tensor
matmulTransposedDiffInt16(const Int16Tensor &a, const Int8Tensor &b)
{
    return matmulTransposedLoop<int16_t, int8_t, int32_t>(a, b);
}

Int32Tensor
conv2dDiffInt16(const Int16Tensor &input, const Int8Tensor &weight,
                const Conv2dParams &params)
{
    return convLoop<int16_t, int8_t, int32_t>(input, weight, nullptr,
                                              params);
}

Int32Tensor
fullyConnectedDiffInt16(const Int16Tensor &input, const Int8Tensor &weight)
{
    return matmulTransposedLoop<int16_t, int8_t, int32_t>(input, weight);
}

} // namespace naive

} // namespace ditto
