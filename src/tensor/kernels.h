/**
 * @file
 * Blocked, parallel kernel library — the fast execution substrate.
 *
 * Every public op in tensor/ops.h routes through these kernels; the
 * scalar triple-loop references they replace live on as ditto::naive::
 * and are used only for parity testing and speedup baselines.
 *
 * Design (see docs/kernels.md for the full picture):
 *  - GEMM is packed-panel and register-tiled: A is packed into
 *    MR-row column-major panels, B into NR-column row-major panels,
 *    and an MR x NR micro-kernel accumulates over KC-length K-blocks
 *    with raw restrict pointers so the compiler vectorizes the inner
 *    loop. The K-block loop is serial, so each output element has a
 *    fixed accumulation order: integer results are bitwise identical
 *    at any thread count, float results are deterministic too.
 *  - Convolutions lower to the same GEMM via im2col (1x1/stride-1/
 *    pad-0 convolutions skip the copy and feed the input slab to the
 *    packer directly).
 *  - Bias and SiLU/GELU epilogues are fused into the GEMM/conv
 *    write-back instead of running as separate tensor passes.
 *  - GEMM row panels, im2col rows, conv batches (when there are
 *    enough to occupy the pool) and the elementwise/normalization ops
 *    are parallelized with common/parallel.h's parallelFor.
 */
#ifndef DITTO_TENSOR_KERNELS_H
#define DITTO_TENSOR_KERNELS_H

#include <bit>
#include <cstdint>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace ditto {
namespace kernels {

/** Epilogue activation fused into GEMM/conv write-back. */
enum class Activation { kNone, kSiLU, kGELU };

/**
 * Fast vectorizable expf.
 *
 * Round-to-nearest range reduction (the 1.5 * 2^23 magic-number trick,
 * valid under the default rounding mode), a two-part ln2 so the reduced
 * argument keeps full precision, a degree-6 Taylor polynomial on
 * [-ln2/2, ln2/2] (truncation error ~1.2e-7 relative) and an exact 2^n
 * scale assembled from the exponent bits. Branch-free and built from
 * elementwise float ops only, so the auto-vectorizer turns the
 * softmax/SiLU sweeps into SIMD loops where glibc's expf was a serial
 * call — and the result is a pure function of the input, identical in
 * scalar and vector code, which the batched-vs-sequential bitwise
 * parity guarantee relies on.
 */
inline float
fastExpf(float x)
{
    // Clamp so the exponent assembly below stays in normal range;
    // exp(-87.3) already underflows float and exp(88.7) overflows.
    // The first select is written NaN-catching (NaN > -87 is false),
    // so a NaN input deterministically maps to exp(-87) ~ 0 instead
    // of feeding the float->int cast undefined behavior.
    x = x > -87.0f ? x : -87.0f;
    x = x < 88.0f ? x : 88.0f;
    constexpr float kLog2e = 1.44269504088896341f;
    constexpr float kRound = 12582912.0f; // 1.5 * 2^23
    const float biased = x * kLog2e + kRound;
    const float nf = biased - kRound; // nearest integer to x * log2(e)
    // r = x - nf * ln2, with ln2 split so the product is exact.
    constexpr float kLn2Hi = 0.693359375f;
    constexpr float kLn2Lo = -2.12194440e-4f;
    const float r = (x - nf * kLn2Hi) - nf * kLn2Lo;
    // exp(r) on [-ln2/2, ln2/2], Horner form.
    float p = 1.0f / 720.0f;
    p = p * r + 1.0f / 120.0f;
    p = p * r + 1.0f / 24.0f;
    p = p * r + 1.0f / 6.0f;
    p = p * r + 0.5f;
    p = p * r + 1.0f;
    p = p * r + 1.0f;
    // 2^n from the exponent bits; nf is integral and within [-126, 127].
    const int32_t n = static_cast<int32_t>(nf);
    const float scale = std::bit_cast<float>((n + 127) << 23);
    return p * scale;
}

/**
 * @name Blocked GEMM
 *
 * C[m,n] = A[m,k] * op(B) with op(B) = B[k,n] or B^T for B:[n,k].
 * Float GEMM optionally fuses a bias row ([n]) and an activation.
 * @{
 */
FloatTensor gemm(const FloatTensor &a, const FloatTensor &b,
                 bool transpose_b, const FloatTensor *bias = nullptr,
                 Activation act = Activation::kNone);
Int32Tensor gemmInt8(const Int8Tensor &a, const Int8Tensor &b,
                     bool transpose_b);
Int32Tensor gemmDiffInt16(const Int16Tensor &a, const Int8Tensor &b,
                          bool transpose_b);
/** @} */

/**
 * @name im2col convolutions on the blocked GEMM
 *
 * Input NCHW, weight OIHW; float conv fuses bias [O] and activation.
 * @{
 */
FloatTensor conv2d(const FloatTensor &input, const FloatTensor &weight,
                   const FloatTensor *bias, const Conv2dParams &params,
                   Activation act = Activation::kNone);
Int32Tensor conv2dInt8(const Int8Tensor &input, const Int8Tensor &weight,
                       const Conv2dParams &params);
Int32Tensor conv2dDiffInt16(const Int16Tensor &input,
                            const Int8Tensor &weight,
                            const Conv2dParams &params);
/** @} */

/**
 * @name Batch-dim-aware raw entry points (serving substrate)
 *
 * The batched denoising path executes several requests' sub-problems
 * through one kernel invocation: GEMM row blocks and conv batch slabs
 * are written straight into the caller's stacked output, so per-call
 * packing, allocation and pool-dispatch overheads amortize across the
 * batch. Each output element keeps exactly the accumulation order of
 * the single-request kernels, so results are bitwise identical to N
 * independent calls at any thread count and batch size (the
 * test_serve.cc parity suite asserts this end to end).
 * @{
 */

/**
 * C[m,n] += A[m,k] * op(B) on raw row-major int8 buffers. `c` rows must
 * hold the accumulation base (zeros for a plain product). op(B) is
 * B[k,n] (ldb = n) or, when trans_b, B^T for B:[n,k] (ldb = k).
 */
void gemmInt8Into(const int8_t *a, int64_t m, int64_t k, const int8_t *b,
                  int64_t n, bool trans_b, int32_t *c);

/**
 * Integer convolution of the batch slabs [batch0, batch0 + batches) of
 * a stacked NCHW input, written into the same slabs of `out` (other
 * slabs untouched). `out` must already be shaped [N, Cout, OH, OW] for
 * the full stack. Bitwise identical to conv2dInt8 per slab.
 */
void conv2dInt8Into(const Int8Tensor &input, const Int8Tensor &weight,
                    const Conv2dParams &params, int64_t batch0,
                    int64_t batches, Int32Tensor *out);
/** @} */

/**
 * @name Parallel elementwise and normalization kernels
 *
 * groupNorm/layerNorm accumulate mean and variance in a single fused
 * sum/sum-of-squares sweep per group/row (the naive references sweep
 * the data three times).
 * @{
 */
FloatTensor add(const FloatTensor &a, const FloatTensor &b);
FloatTensor subtract(const FloatTensor &a, const FloatTensor &b);
FloatTensor multiply(const FloatTensor &a, const FloatTensor &b);
FloatTensor affine(const FloatTensor &x, float scale, float shift);
FloatTensor silu(const FloatTensor &x);
FloatTensor gelu(const FloatTensor &x);
FloatTensor softmaxRows(const FloatTensor &x);
FloatTensor groupNorm(const FloatTensor &x, int64_t groups, float eps);
FloatTensor layerNorm(const FloatTensor &x, float eps);
Int32Tensor addInt32(const Int32Tensor &a, const Int32Tensor &b);
Int16Tensor subtractInt8(const Int8Tensor &a, const Int8Tensor &b);
/** @} */

} // namespace kernels
} // namespace ditto

#endif // DITTO_TENSOR_KERNELS_H
