/**
 * @file
 * Blocked, parallel kernel library — the fast execution substrate.
 *
 * Every public op in tensor/ops.h routes through these kernels; the
 * scalar triple-loop references they replace live on as ditto::naive::
 * and are used only for parity testing and speedup baselines.
 *
 * Design (see docs/kernels.md for the full picture):
 *  - GEMM is packed-panel and register-tiled: A is packed into
 *    MR-row column-major panels, B into NR-column row-major panels,
 *    and an MR x NR micro-kernel accumulates over KC-length K-blocks
 *    with raw restrict pointers so the compiler vectorizes the inner
 *    loop. The K-block loop is serial, so each output element has a
 *    fixed accumulation order: integer results are bitwise identical
 *    at any thread count, float results are deterministic too.
 *  - Convolutions lower to the same GEMM via im2col (1x1/stride-1/
 *    pad-0 convolutions skip the copy and feed the input slab to the
 *    packer directly).
 *  - Bias and SiLU/GELU epilogues are fused into the GEMM/conv
 *    write-back instead of running as separate tensor passes.
 *  - GEMM row panels, im2col rows, conv batches (when there are
 *    enough to occupy the pool) and the elementwise/normalization ops
 *    are parallelized with common/parallel.h's parallelFor.
 */
#ifndef DITTO_TENSOR_KERNELS_H
#define DITTO_TENSOR_KERNELS_H

#include <cstdint>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace ditto {
namespace kernels {

/** Epilogue activation fused into GEMM/conv write-back. */
enum class Activation { kNone, kSiLU, kGELU };

/**
 * @name Blocked GEMM
 *
 * C[m,n] = A[m,k] * op(B) with op(B) = B[k,n] or B^T for B:[n,k].
 * Float GEMM optionally fuses a bias row ([n]) and an activation.
 * @{
 */
FloatTensor gemm(const FloatTensor &a, const FloatTensor &b,
                 bool transpose_b, const FloatTensor *bias = nullptr,
                 Activation act = Activation::kNone);
Int32Tensor gemmInt8(const Int8Tensor &a, const Int8Tensor &b,
                     bool transpose_b);
Int32Tensor gemmDiffInt16(const Int16Tensor &a, const Int8Tensor &b,
                          bool transpose_b);
/** @} */

/**
 * @name im2col convolutions on the blocked GEMM
 *
 * Input NCHW, weight OIHW; float conv fuses bias [O] and activation.
 * @{
 */
FloatTensor conv2d(const FloatTensor &input, const FloatTensor &weight,
                   const FloatTensor *bias, const Conv2dParams &params,
                   Activation act = Activation::kNone);
Int32Tensor conv2dInt8(const Int8Tensor &input, const Int8Tensor &weight,
                       const Conv2dParams &params);
Int32Tensor conv2dDiffInt16(const Int16Tensor &input,
                            const Int8Tensor &weight,
                            const Conv2dParams &params);
/** @} */

/**
 * @name Parallel elementwise and normalization kernels
 *
 * groupNorm/layerNorm accumulate mean and variance in a single fused
 * sum/sum-of-squares sweep per group/row (the naive references sweep
 * the data three times).
 * @{
 */
FloatTensor add(const FloatTensor &a, const FloatTensor &b);
FloatTensor subtract(const FloatTensor &a, const FloatTensor &b);
FloatTensor multiply(const FloatTensor &a, const FloatTensor &b);
FloatTensor affine(const FloatTensor &x, float scale, float shift);
FloatTensor silu(const FloatTensor &x);
FloatTensor gelu(const FloatTensor &x);
FloatTensor softmaxRows(const FloatTensor &x);
FloatTensor groupNorm(const FloatTensor &x, int64_t groups, float eps);
FloatTensor layerNorm(const FloatTensor &x, float eps);
Int32Tensor addInt32(const Int32Tensor &a, const Int32Tensor &b);
Int16Tensor subtractInt8(const Int8Tensor &a, const Int8Tensor &b);
/** @} */

} // namespace kernels
} // namespace ditto

#endif // DITTO_TENSOR_KERNELS_H
