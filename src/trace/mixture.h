/**
 * @file
 * Analytic statistics of quantized diffusion-model activations.
 *
 * The paper derives every Ditto result from per-layer, per-step
 * statistics of hook-captured activations: cosine similarity between
 * adjacent time steps, value ranges, and the zero / 4-bit / >4-bit
 * classification of quantized activations and differences (Figs. 3-5).
 * We reproduce those statistics with a three-component Gaussian mixture
 * process per activation element:
 *
 *  - component 0: a near-zero spike (post-SiLU negatives, dead
 *    channels) responsible for the zeros of quantized activations,
 *  - component 1: the unit-variance bulk,
 *  - component 2: rare high-magnitude outlier channels (the well-known
 *    heavy tails of diffusion activations) that set the value range.
 *
 * Each component carries its own AR(1) temporal correlation (adjacent
 * time steps) and spatial correlation (adjacent elements); outlier
 * channels are the most temporally stable, which is exactly what lets
 * the paper observe both a high overall cosine similarity (0.983) and a
 * much larger range compression (8.96x).
 *
 * All quantities below are closed-form functions of the mixture
 * parameters; trace/sampler.h provides the Monte Carlo counterpart used
 * to validate them.
 */
#ifndef DITTO_TRACE_MIXTURE_H
#define DITTO_TRACE_MIXTURE_H

namespace ditto {

/** Fractions of quantized values per hardware bit-class; sums to 1. */
struct BitFractions
{
    double zero = 0.0;
    double low4 = 0.0;
    double full8 = 0.0;

    double atMost4() const { return zero + low4; }
};

/** Parameters of the three-component activation mixture. */
struct MixtureParams
{
    // Component weights; w1 (bulk) = 1 - w0 - w2.
    double w0 = 0.15;        //!< near-zero spike weight
    double w2 = 0.02;        //!< outlier weight
    double sigma0 = 0.02;    //!< near-zero spike std (in bulk units)
    double beta = 4.0;       //!< outlier std (bulk std is fixed at 1)

    // AR(1) correlation between adjacent time steps, per component.
    double rhoT0 = 0.99;
    double rhoT1 = 0.99;
    double rhoT2 = 0.999;

    // Correlation between adjacent elements (spatial), per component.
    double rhoS0 = 0.3;
    double rhoS1 = 0.3;
    double rhoS2 = 0.3;

    // Dynamic-quantization clip: maxabs ~= clipK * largest component std.
    double clipK = 4.0;

    /**
     * Heavy-tail temporal innovations: with probability jumpProb an
     * element's step-to-step change is jumpScale times larger. Real
     * activation differences have heavier tails than a Gaussian — this
     * supplies the paper's 3.99% of temporal differences that need the
     * full 8-bit path. Jumps are rare point events and are excluded
     * from the (bulk-dominated) range statistics.
     */
    double jumpProb = 0.0;
    double jumpScale = 6.0;

    double w1() const { return 1.0 - w0 - w2; }
};

/** Signed 8-bit quantization step for the mixture (scale, bulk units). */
double quantScale(const MixtureParams &p);

/**
 * P(quantized code == 0) for one Gaussian component with std `sigma`
 * under step `s`, i.e. P(|x| <= s/2).
 */
double zeroProbGaussian(double sigma, double s);

/**
 * P(difference of two quantized codes == 0) when the underlying values
 * differ by d ~ N(0, sigma_d^2): E_d[max(0, 1 - |d|/s)] (the exact
 * triangular smoothing of round(x+d) - round(x) over the rounding
 * phase).
 */
double zeroProbQuantDiff(double sigma_d, double s);

/**
 * P(|quantized value| <= m codes) for a Gaussian with std `sigma`
 * (m = 7 is the signed 4-bit boundary).
 */
double atMostProbGaussian(double sigma, double s, int m);

/** Std of the temporal difference of a component: sigma*sqrt(2(1-rho)). */
double diffSigma(double sigma, double rho);

/** Bit-class fractions of the quantized activation itself. */
BitFractions activationFractions(const MixtureParams &p);

/** Bit-class fractions of quantized temporal differences. */
BitFractions temporalDiffFractions(const MixtureParams &p);

/** Bit-class fractions of quantized spatial differences. */
BitFractions spatialDiffFractions(const MixtureParams &p);

/** Cosine similarity between adjacent-step activations. */
double temporalCosine(const MixtureParams &p);

/** Cosine similarity between adjacent elements (spatial). */
double spatialCosine(const MixtureParams &p);

/** Value range (max - min) of the activation, bulk units. */
double activationRange(const MixtureParams &p);

/** Value range of the temporal difference, bulk units. */
double temporalDiffRange(const MixtureParams &p);

/** activationRange / temporalDiffRange. */
double rangeRatio(const MixtureParams &p);

} // namespace ditto

#endif // DITTO_TRACE_MIXTURE_H
