/**
 * @file
 * TraceProvider implementation.
 */
#include "trace/provider.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "trace/calibrate.h"

namespace ditto {

namespace {

constexpr double kRhoMax = 0.9999995;

/** Scale (1 - rho) by `factor`, keeping rho in a valid band. */
double
modulateRho(double rho, double factor)
{
    const double one_minus = (1.0 - rho) * factor;
    return std::clamp(1.0 - one_minus, -0.9, kRhoMax);
}

} // namespace

TraceProvider::TraceProvider(ModelId id, const ModelGraph &graph,
                             TraceOptions options)
    : graph_(&graph), modelId_(id), options_(options),
      base_(calibratedParams(id)),
      steps_(modelInfo(id).sampler.totalSteps())
{
    const int n = graph.numLayers();
    layerFactor_.resize(n, 1.0);
    layerAmplitude_.resize(n, 1.0);
    layerPhase_.resize(n, 0.0);
    cache_.resize(n);
    cached_.assign(n, false);

    // Per-layer jitter on (1 - rho): log-normal, later normalised to a
    // mean of one so the model-level averages stay on target.
    double factor_sum = 0.0;
    int compute_layers = 0;
    int64_t max_cin = 1;
    for (const Layer &l : graph.layers())
        if (l.isCompute())
            max_cin = std::max(max_cin, l.inputElems);
    for (const Layer &l : graph.layers()) {
        if (!l.isCompute())
            continue;
        Rng rng = Rng::fromKeys(options_.seed,
                                static_cast<uint64_t>(modelId_),
                                static_cast<uint64_t>(l.id));
        layerFactor_[l.id] = std::exp(rng.normal(0.0, 0.35));
        factor_sum += layerFactor_[l.id];
        ++compute_layers;
        // Wider layers carry larger magnitudes (Fig. 4a): amplitude
        // grows with the operand size to the 1/4 power.
        const double rel =
            static_cast<double>(std::max<int64_t>(l.inputElems, 1)) /
            static_cast<double>(max_cin);
        layerAmplitude_[l.id] =
            std::pow(std::max(rel, 1e-6), 0.5) *
            std::exp(rng.normal(0.0, 0.2));
        layerPhase_[l.id] = rng.uniform(0.0, 2.0 * 3.14159265358979);
    }
    DITTO_ASSERT(compute_layers > 0, "graph has no compute layers");
    const double factor_mean = factor_sum / compute_layers;
    double amp_sum = 0.0;
    for (const Layer &l : graph.layers()) {
        if (!l.isCompute())
            continue;
        layerFactor_[l.id] /= factor_mean;
        amp_sum += layerAmplitude_[l.id];
    }
    // Normalise amplitudes so the mean activation range matches the
    // Fig. 4b target for this model.
    const double amp_mean = amp_sum / compute_layers;
    const double range_base = activationRange(base_);
    const double amp_scale =
        statTargets(modelId_).avgActRange / (amp_mean * range_base);
    for (const Layer &l : graph.layers())
        if (l.isCompute())
            layerAmplitude_[l.id] *= amp_scale;

    // Per-step profile: the final steps of the reverse process denoise
    // the most, lowering similarity. Normalised to mean one.
    stepFactor_.resize(steps_, 1.0);
    const double tau = std::max(2.0, steps_ / 16.0);
    double step_sum = 0.0;
    for (int t = 0; t < steps_; ++t) {
        const double from_end = static_cast<double>(steps_ - 1 - t);
        stepFactor_[t] = 1.0 + 2.0 * std::exp(-from_end / tau);
        step_sum += stepFactor_[t];
    }
    for (int t = 0; t < steps_; ++t)
        stepFactor_[t] *= steps_ / step_sum;
}

double
TraceProvider::layerAmplitude(int layer_id) const
{
    DITTO_ASSERT(layer_id >= 0 && layer_id < graph_->numLayers(),
                 "layer id out of range");
    return layerAmplitude_[layer_id];
}

double
TraceProvider::stepFactor(int step) const
{
    DITTO_ASSERT(step >= 0 && step < steps_, "step out of range");
    return stepFactor_[step];
}

void
TraceProvider::computeLayer(int layer_id) const
{
    auto &row = cache_[layer_id];
    row.resize(steps_);
    const double lf = layerFactor_[layer_id];
    const double amp = layerAmplitude_[layer_id];

    Rng step_rng = Rng::fromKeys(options_.seed ^ 0x57E9,
                                 static_cast<uint64_t>(modelId_),
                                 static_cast<uint64_t>(layer_id));
    for (int t = 0; t < steps_; ++t) {
        // Per-(layer, step) jitter: real activation statistics are not
        // perfectly smooth across steps, which is what makes Defo's
        // locked second-step decision occasionally wrong (Fig. 17's
        // 92% accuracy).
        double factor = lf * stepFactor_[t] *
                        std::exp(step_rng.normal(0.0, 0.25));
        double drift_mult = 1.0;
        if (options_.driftSimilarity) {
            // Oscillating similarity: alternates the per-layer
            // difference-processing benefit across the time domain.
            const double osc = options_.driftAmplitude *
                std::sin(2.0 * 3.14159265358979 * t /
                             std::max(4.0, steps_ / 3.0) +
                         layerPhase_[layer_id]);
            drift_mult = std::exp(osc);
            factor *= drift_mult;
        }
        MixtureParams p = base_;
        if (options_.driftSimilarity) {
            // Distribution shifts move the tails, not just the widths:
            // low-similarity phases see far more full-bit-width jumps,
            // which is what makes the per-layer execution-type optimum
            // change across the time domain (Fig. 19's premise).
            p.jumpProb = std::min(0.95, p.jumpProb * drift_mult);
        }
        p.rhoT0 = modulateRho(p.rhoT0, factor);
        p.rhoT1 = modulateRho(p.rhoT1, factor);
        p.rhoT2 = modulateRho(p.rhoT2, factor);
        // Spatial structure varies across layers but not across steps.
        p.rhoS0 = modulateRho(p.rhoS0, lf);
        p.rhoS1 = modulateRho(p.rhoS1, lf);
        p.rhoS2 = modulateRho(p.rhoS2, lf);

        LayerStepStats &st = row[t];
        st.act = activationFractions(p);
        st.temp = temporalDiffFractions(p);
        st.spat = spatialDiffFractions(p);
        st.cosT = temporalCosine(p);
        st.cosS = spatialCosine(p);
        st.actRange = amp * activationRange(p);
        st.diffRange = amp * temporalDiffRange(p);
    }
    cached_[layer_id] = true;
}

const LayerStepStats &
TraceProvider::stats(int layer_id, int step) const
{
    DITTO_ASSERT(layer_id >= 0 && layer_id < graph_->numLayers(),
                 "layer id out of range");
    DITTO_ASSERT(step >= 0 && step < steps_, "step out of range");
    if (!cached_[layer_id])
        computeLayer(layer_id);
    return cache_[layer_id][step];
}

} // namespace ditto
