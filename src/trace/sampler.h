/**
 * @file
 * Monte Carlo sampler of the calibrated activation process.
 *
 * Generates actual float tensors following the mixture model — the same
 * element-level process the analytic formulas of mixture.h describe —
 * so that (a) the analytic statistics can be validated empirically,
 * (b) figure-level analyses (value heatmaps, per-step ranges) run on
 * concrete data, and (c) the functional Ditto pipeline has realistic
 * multi-step inputs.
 *
 * Elements are grouped into contiguous blocks that share a mixture
 * component (mimicking the channel structure of real activations:
 * outliers concentrate in specific channels). Each element carries an
 * AR(1) chain across time steps; innovations are spatially correlated
 * within a block so spatial similarity is preserved at every step.
 */
#ifndef DITTO_TRACE_SAMPLER_H
#define DITTO_TRACE_SAMPLER_H

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "trace/mixture.h"

namespace ditto {

/** Generates temporally and spatially correlated activation sequences. */
class MixtureSampler
{
  public:
    /** Elements per component block (channel-run granularity). */
    static constexpr int64_t kBlock = 32;

    MixtureSampler(const MixtureParams &params, uint64_t seed);

    /**
     * Sample a sequence of `steps` activation tensors with `elems`
     * elements each, scaled by `amplitude`.
     */
    std::vector<FloatTensor> sampleSequence(int64_t elems, int steps,
                                            double amplitude = 1.0);

    const MixtureParams &params() const { return params_; }

  private:
    MixtureParams params_;
    uint64_t seed_;
    uint64_t sequence_ = 0;
};

} // namespace ditto

#endif // DITTO_TRACE_SAMPLER_H
