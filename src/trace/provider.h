/**
 * @file
 * Per-layer, per-step activation statistics for a model graph.
 *
 * This is the reproduction's replacement for the Sparse-DySta
 * simulator's PyTorch hooks: where the paper observes real activations
 * per layer and time step, we derive the same statistics from the
 * calibrated mixture, modulated by
 *
 *  - a per-layer factor (deterministic hash jitter; wide/deep layers
 *    carry larger magnitudes, matching Fig. 4a's conv-in vs
 *    up.0.0.skip contrast),
 *  - a per-step profile: the final denoising steps change the image the
 *    most, so (1 - rho) grows toward the end of the reverse process —
 *    reproducing the lower BOPs reduction of the last steps (Fig. 6b),
 *  - an optional drift mode that oscillates the temporal similarity
 *    across steps, the stress scenario of the Dynamic-Ditto study
 *    (Fig. 19).
 */
#ifndef DITTO_TRACE_PROVIDER_H
#define DITTO_TRACE_PROVIDER_H

#include <cstdint>
#include <vector>

#include "model/graph.h"
#include "model/zoo.h"
#include "trace/mixture.h"

namespace ditto {

/** Statistics of one layer's dynamic input at one denoising step. */
struct LayerStepStats
{
    BitFractions act;   //!< quantized activation bit classes
    BitFractions temp;  //!< quantized temporal-difference bit classes
    BitFractions spat;  //!< quantized spatial-difference bit classes
    double cosT = 1.0;  //!< cosine similarity to the previous step
    double cosS = 0.0;  //!< spatial cosine similarity
    double actRange = 0.0;   //!< activation value range (model units)
    double diffRange = 0.0;  //!< temporal-difference value range
};

/** Options controlling trace synthesis. */
struct TraceOptions
{
    uint64_t seed = 7;
    /** Fig. 19 stress mode: oscillate temporal similarity across steps. */
    bool driftSimilarity = false;
    double driftAmplitude = 3.0; //!< log-amplitude of the oscillation
};

/**
 * Supplies LayerStepStats for every (compute layer, step) pair of one
 * model. Construction is cheap; statistics are precomputed lazily per
 * layer and cached.
 */
class TraceProvider
{
  public:
    TraceProvider(ModelId id, const ModelGraph &graph,
                  TraceOptions options = {});

    /** Stats of layer `layer_id` at executed step `step` (0-based). */
    const LayerStepStats &stats(int layer_id, int step) const;

    /** Number of executed denoising steps (sampler steps + extra). */
    int steps() const { return steps_; }

    const ModelGraph &graph() const { return *graph_; }
    const MixtureParams &baseParams() const { return base_; }

    /** Per-layer magnitude amplitude (value-range scale). */
    double layerAmplitude(int layer_id) const;

    /** Per-step modulation factor applied to (1 - rho_temporal). */
    double stepFactor(int step) const;

  private:
    const ModelGraph *graph_;
    ModelId modelId_;
    TraceOptions options_;
    MixtureParams base_;
    int steps_;
    std::vector<double> layerFactor_;    //!< per-layer (1-rho) multiplier
    std::vector<double> layerAmplitude_;
    std::vector<double> stepFactor_;     //!< per-step (1-rho) multiplier
    std::vector<double> layerPhase_;     //!< drift-mode oscillation phase
    mutable std::vector<std::vector<LayerStepStats>> cache_;
    mutable std::vector<bool> cached_;

    void computeLayer(int layer_id) const;
};

} // namespace ditto

#endif // DITTO_TRACE_PROVIDER_H
