/**
 * @file
 * Fits mixture parameters to per-model statistical targets.
 *
 * The fit is a fixed-point iteration where each parameter is updated
 * from the one target it dominates (monotone 1-D solves via bisection):
 *
 *  - outlier temporal correlation  <- range compression ratio (closed form)
 *  - outlier magnitude beta        <- <=4-bit fraction of activations
 *  - near-zero spike weight w0     <- zero fraction of activations
 *  - bulk temporal correlation     <- zero fraction of temporal diffs
 *  - outlier weight w2             <- temporal cosine similarity
 *  - bulk spatial correlation      <- zero fraction of spatial diffs
 *  - outlier spatial correlation   <- spatial cosine similarity (closed)
 *
 * The <=4-bit fractions of temporal and spatial differences are left
 * emergent and verified against the targets in the test suite.
 */
#ifndef DITTO_TRACE_CALIBRATE_H
#define DITTO_TRACE_CALIBRATE_H

#include "model/zoo.h"
#include "trace/mixture.h"
#include "trace/targets.h"

namespace ditto {

/** Fit mixture parameters to arbitrary targets (60 fixed-point sweeps). */
MixtureParams calibrateToTargets(const StatTargets &targets);

/** Cached calibration for one zoo model. */
const MixtureParams &calibratedParams(ModelId id);

} // namespace ditto

#endif // DITTO_TRACE_CALIBRATE_H
