/**
 * @file
 * Fits mixture parameters to per-model statistical targets.
 *
 * The fit is a fixed-point iteration where each parameter is updated
 * from the one target it dominates (monotone 1-D solves via bisection):
 *
 *  - outlier temporal correlation  <- range compression ratio (closed form)
 *  - outlier magnitude beta        <- <=4-bit fraction of activations
 *  - near-zero spike weight w0     <- zero fraction of activations
 *  - bulk temporal correlation     <- zero fraction of temporal diffs
 *  - outlier weight w2             <- temporal cosine similarity
 *  - bulk spatial correlation      <- zero fraction of spatial diffs
 *  - outlier spatial correlation   <- spatial cosine similarity (closed)
 *
 * The <=4-bit fractions of temporal and spatial differences are left
 * emergent and verified against the targets in the test suite.
 */
#ifndef DITTO_TRACE_CALIBRATE_H
#define DITTO_TRACE_CALIBRATE_H

#include <cstdint>
#include <string>
#include <vector>

#include "model/zoo.h"
#include "trace/mixture.h"
#include "trace/targets.h"

namespace ditto {

/** Fit mixture parameters to arbitrary targets (60 fixed-point sweeps). */
MixtureParams calibrateToTargets(const StatTargets &targets);

/** Cached calibration for one zoo model. */
const MixtureParams &calibratedParams(ModelId id);

/**
 * @name Disk cache for calibrated quantizer scales
 *
 * Offline calibration (e.g. MiniUnet's FP32 rollout that records
 * max-abs at every quantization point) is deterministic in the model /
 * trace configuration, so its result can be keyed on a hash of that
 * configuration and reused across processes: repeated bench and test
 * runs skip the FP32 rollout entirely.
 *
 * Storage is one small text file per key under the cache directory
 * (DITTO_CACHE_DIR, default ".ditto-cache" in the working directory),
 * written atomically via rename; floats round-trip exactly through
 * hexfloat formatting. Set DITTO_NO_CACHE=1 to disable both load and
 * store. Corrupt, truncated or size-mismatched files are treated as
 * misses. Callers must fold an algorithm-version salt into the key so
 * stale entries die with the code that wrote them.
 * @{
 */

/** FNV-1a-style 64-bit hash combiner for cache keys. */
uint64_t hashMix(uint64_t h, uint64_t value);

/** Resolved cache directory, or empty when caching is disabled. */
std::string calibrationCacheDir();

/** Load a cached scale vector. False on miss/mismatch/disabled. */
bool loadCachedScales(uint64_t key, size_t expected_count,
                      std::vector<float> *out);

/** Persist a scale vector under `key` (best-effort, atomic). */
void storeCachedScales(uint64_t key, const std::vector<float> &scales);

/** @} */

} // namespace ditto

#endif // DITTO_TRACE_CALIBRATE_H
