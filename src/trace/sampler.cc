/**
 * @file
 * Monte Carlo mixture sampler implementation.
 */
#include "trace/sampler.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace ditto {

MixtureSampler::MixtureSampler(const MixtureParams &params, uint64_t seed)
    : params_(params), seed_(seed)
{}

std::vector<FloatTensor>
MixtureSampler::sampleSequence(int64_t elems, int steps, double amplitude)
{
    DITTO_ASSERT(elems > 0 && steps > 0, "bad sample request");
    Rng rng = Rng::fromKeys(seed_, 0xD1770, sequence_++);

    // Assign one mixture component per contiguous block of elements.
    const int64_t blocks = (elems + kBlock - 1) / kBlock;
    std::vector<int> component(blocks);
    for (int64_t b = 0; b < blocks; ++b) {
        const double u = rng.uniform();
        component[b] = u < params_.w0 ? 0 : (u < params_.w0 + params_.w1()
                                                 ? 1 : 2);
    }
    auto sigma_of = [&](int c) {
        return c == 0 ? params_.sigma0 : (c == 1 ? 1.0 : params_.beta);
    };
    auto rho_t_of = [&](int c) {
        return c == 0 ? params_.rhoT0 : (c == 1 ? params_.rhoT1
                                                : params_.rhoT2);
    };
    auto rho_s_of = [&](int c) {
        return c == 0 ? params_.rhoS0 : (c == 1 ? params_.rhoS1
                                                : params_.rhoS2);
    };

    // Draw a spatially-correlated standard field: AR(1) along elements,
    // restarting at block boundaries.
    auto draw_field = [&](std::vector<double> &field) {
        for (int64_t b = 0; b < blocks; ++b) {
            const double rho_s = rho_s_of(component[b]);
            const double innov = std::sqrt(
                std::max(1.0 - rho_s * rho_s, 0.0));
            const int64_t lo = b * kBlock;
            const int64_t hi = std::min(lo + kBlock, elems);
            for (int64_t i = lo; i < hi; ++i) {
                field[i] = i == lo
                    ? rng.normal()
                    : rho_s * field[i - 1] + innov * rng.normal();
            }
        }
    };

    std::vector<double> state(elems);
    std::vector<double> innovation(elems);
    draw_field(state);

    std::vector<FloatTensor> out;
    out.reserve(steps);
    for (int t = 0; t < steps; ++t) {
        if (t > 0) {
            // Temporal AR(1) with spatially-correlated innovations keeps
            // both correlation structures at every step.
            draw_field(innovation);
            for (int64_t b = 0; b < blocks; ++b) {
                const double rho_t = rho_t_of(component[b]);
                const double innov = std::sqrt(
                    std::max(1.0 - rho_t * rho_t, 0.0));
                const int64_t lo = b * kBlock;
                const int64_t hi = std::min(lo + kBlock, elems);
                for (int64_t i = lo; i < hi; ++i) {
                    // Heavy-tail jumps: rare, larger step changes.
                    const double jump =
                        params_.jumpProb > 0.0 &&
                                rng.bernoulli(params_.jumpProb)
                            ? params_.jumpScale : 1.0;
                    state[i] = rho_t * state[i] +
                               jump * innov * innovation[i];
                }
            }
        }
        FloatTensor tensor(Shape{elems});
        auto span = tensor.data();
        for (int64_t i = 0; i < elems; ++i) {
            const double sigma = sigma_of(component[i / kBlock]);
            span[i] = static_cast<float>(amplitude * sigma * state[i]);
        }
        out.push_back(std::move(tensor));
    }
    return out;
}

} // namespace ditto
