/**
 * @file
 * Per-model calibration target table.
 *
 * Averages the paper states (provenance (a)):
 *  - temporal cosine similarity 0.983, all models > 0.947 (Sec. II-B)
 *  - spatial cosine similarity 0.31 (Sec. II-B)
 *  - range ratio avg 8.96x; DDPM 25.02x, CHUR 2.44x (Sec. III-A)
 *  - temporal diffs: 44.48% zero, 96.01% <=4-bit; 3.99% >4-bit (Sec. III-B)
 *  - activations: 42.28% >4-bit; zeros 26.12% below temporal zeros
 *  - spatial diffs: 25.58% >4-bit; zeros 18.04% below temporal zeros
 *  - DDPM/CHUR have the largest zero fractions (Sec. III-B BOPs text)
 *  - Latte has high spatial similarity (video frames; Sec. VI-C)
 *
 * Per-model splits below are (b)/(c): bar readings from Figs. 3b/4b/5
 * adjusted so every stated average is matched exactly by the 7-model
 * mean.
 */
#include "trace/targets.h"

#include "common/logging.h"

namespace ditto {

const StatTargets &
statTargets(ModelId id)
{
    //   cosT   cosS  ratio zeroT  le4T  zeroA  le4A  zeroS  le4S  range
    static const StatTargets kDdpm =
        {0.995, 0.42, 25.02, 0.620, 0.985, 0.200, 0.640, 0.270, 0.800, 5.0};
    static const StatTargets kBed =
        {0.985, 0.30, 6.50, 0.420, 0.960, 0.170, 0.560, 0.250, 0.740, 12.0};
    static const StatTargets kChur =
        {0.955, 0.38, 2.44, 0.600, 0.970, 0.190, 0.600, 0.250, 0.770, 8.0};
    static const StatTargets kImg =
        {0.980, 0.28, 7.00, 0.380, 0.950, 0.180, 0.570, 0.240, 0.720, 10.0};
    static const StatTargets kSdm =
        {0.985, 0.25, 8.00, 0.400, 0.955, 0.170, 0.560, 0.220, 0.670, 13.0};
    static const StatTargets kDit =
        {0.975, 0.22, 5.50, 0.350, 0.945, 0.180, 0.550, 0.200, 0.660, 25.0};
    // Latte is a video task: repeated content across frames gives its
    // activations higher spatial similarity than the image models,
    // which is why Defo+ moves many of its layers to spatial difference
    // processing (Sec. VI-C). Our single statistical family cannot make
    // spatial processing strictly dominate temporal while also matching
    // Latte's Fig. 5 temporal bars, so the Defo+ reversion ratio lands
    // below the paper's 81.6% — recorded in EXPERIMENTS.md.
    static const StatTargets kLatte =
        {0.985, 0.48, 8.26, 0.344, 0.956, 0.195, 0.560, 0.380, 0.820, 20.0};

    switch (id) {
      case ModelId::DDPM: return kDdpm;
      case ModelId::BED: return kBed;
      case ModelId::CHUR: return kChur;
      case ModelId::IMG: return kImg;
      case ModelId::SDM: return kSdm;
      case ModelId::DiT: return kDit;
      case ModelId::Latte: return kLatte;
    }
    DITTO_PANIC("unknown ModelId");
}

} // namespace ditto
