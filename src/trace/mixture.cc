/**
 * @file
 * Analytic mixture statistics implementation.
 */
#include "trace/mixture.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace ditto {

namespace {

constexpr double kSqrt2Pi = 2.506628274631000502;

/** Standard normal pdf. */
double
phi(double u)
{
    return std::exp(-0.5 * u * u) / kSqrt2Pi;
}

} // namespace

double
quantScale(const MixtureParams &p)
{
    const double maxsigma = std::max({p.sigma0, 1.0, p.beta});
    return p.clipK * maxsigma / 127.0;
}

double
zeroProbGaussian(double sigma, double s)
{
    DITTO_ASSERT(sigma > 0.0 && s > 0.0, "bad zeroProbGaussian args");
    return normalAbsCdf(0.5 * s / sigma);
}

double
zeroProbQuantDiff(double sigma_d, double s)
{
    DITTO_ASSERT(s > 0.0, "bad quantization step");
    if (sigma_d <= 1e-12)
        return 1.0; // no change between steps: codes always match
    const double z = s / sigma_d;
    // E[max(0, 1 - |d|/s)] = P(|d|<=s) - (2/z) (phi(0) - phi(z)).
    return normalAbsCdf(z) - (2.0 / z) * (phi(0.0) - phi(z));
}

double
atMostProbGaussian(double sigma, double s, int m)
{
    DITTO_ASSERT(sigma > 0.0 && s > 0.0 && m >= 0, "bad atMostProb args");
    return normalAbsCdf((static_cast<double>(m) + 0.5) * s / sigma);
}

double
diffSigma(double sigma, double rho)
{
    return sigma * std::sqrt(std::max(2.0 * (1.0 - rho), 0.0));
}

namespace {

/**
 * Combine per-component zero and <=4-bit probabilities into fractions.
 * Component stds of the analysed quantity are passed in `sig`; a
 * non-positive std means the component never changes (always zero).
 */
BitFractions
combine(const MixtureParams &p, const double sig[3], double s,
        bool smooth_zero)
{
    const double w[3] = {p.w0, p.w1(), p.w2};
    BitFractions f;
    double at_most4 = 0.0;
    for (int c = 0; c < 3; ++c) {
        if (sig[c] <= 1e-12) {
            f.zero += w[c];
            at_most4 += w[c];
            continue;
        }
        f.zero += w[c] * (smooth_zero ? zeroProbQuantDiff(sig[c], s)
                                      : zeroProbGaussian(sig[c], s));
        at_most4 += w[c] * atMostProbGaussian(sig[c], s, 7);
    }
    f.low4 = std::max(at_most4 - f.zero, 0.0);
    f.full8 = std::max(1.0 - at_most4, 0.0);
    return f;
}

} // namespace

BitFractions
activationFractions(const MixtureParams &p)
{
    const double s = quantScale(p);
    const double sig[3] = {p.sigma0, 1.0, p.beta};
    return combine(p, sig, s, /*smooth_zero=*/false);
}

BitFractions
temporalDiffFractions(const MixtureParams &p)
{
    const double s = quantScale(p);
    const double sig[3] = {
        diffSigma(p.sigma0, p.rhoT0),
        diffSigma(1.0, p.rhoT1),
        diffSigma(p.beta, p.rhoT2),
    };
    const BitFractions base = combine(p, sig, s, /*smooth_zero=*/true);
    if (p.jumpProb <= 0.0)
        return base;
    double jump_sig[3];
    for (int c = 0; c < 3; ++c)
        jump_sig[c] = sig[c] * p.jumpScale;
    const BitFractions jump = combine(p, jump_sig, s, /*smooth_zero=*/true);
    BitFractions f;
    f.zero = (1.0 - p.jumpProb) * base.zero + p.jumpProb * jump.zero;
    f.low4 = (1.0 - p.jumpProb) * base.low4 + p.jumpProb * jump.low4;
    f.full8 = (1.0 - p.jumpProb) * base.full8 + p.jumpProb * jump.full8;
    return f;
}

BitFractions
spatialDiffFractions(const MixtureParams &p)
{
    const double s = quantScale(p);
    const double sig[3] = {
        diffSigma(p.sigma0, p.rhoS0),
        diffSigma(1.0, p.rhoS1),
        diffSigma(p.beta, p.rhoS2),
    };
    return combine(p, sig, s, /*smooth_zero=*/true);
}

namespace {

/** Variance-weighted correlation across components. */
double
mixtureCosine(const MixtureParams &p, double r0, double r1, double r2)
{
    const double v0 = p.w0 * p.sigma0 * p.sigma0;
    const double v1 = p.w1();
    const double v2 = p.w2 * p.beta * p.beta;
    const double total = v0 + v1 + v2;
    DITTO_ASSERT(total > 0.0, "degenerate mixture");
    return (v0 * r0 + v1 * r1 + v2 * r2) / total;
}

} // namespace

double
temporalCosine(const MixtureParams &p)
{
    return mixtureCosine(p, p.rhoT0, p.rhoT1, p.rhoT2);
}

double
spatialCosine(const MixtureParams &p)
{
    return mixtureCosine(p, p.rhoS0, p.rhoS1, p.rhoS2);
}

double
activationRange(const MixtureParams &p)
{
    return 2.0 * p.clipK * std::max({p.sigma0, 1.0, p.beta});
}

double
temporalDiffRange(const MixtureParams &p)
{
    const double sd = std::max({diffSigma(p.sigma0, p.rhoT0),
                                diffSigma(1.0, p.rhoT1),
                                diffSigma(p.beta, p.rhoT2)});
    return 2.0 * p.clipK * sd;
}

double
rangeRatio(const MixtureParams &p)
{
    const double dr = temporalDiffRange(p);
    DITTO_ASSERT(dr > 0.0, "zero difference range");
    return activationRange(p) / dr;
}

} // namespace ditto
