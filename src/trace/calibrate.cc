/**
 * @file
 * Mixture calibration implementation.
 */
#include "trace/calibrate.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>

#include "common/bisect.h"
#include "common/env.h"
#include "common/logging.h"

namespace ditto {

namespace {

constexpr double kRhoMax = 0.9999995;

/** Clamp a correlation into a safe open interval. */
double
clampRho(double rho)
{
    return std::clamp(rho, -0.9, kRhoMax);
}

/**
 * Damped update: moves a parameter 60% of the way to its 1-D solve.
 * The block-coordinate iteration pairs knobs with coupled outputs
 * (jumpProb with rhoT1, rhoS0 with rhoS1); damping suppresses the
 * period-2 cycling plain alternation exhibits on some target sets.
 */
double
damp(double old_value, double new_value)
{
    return old_value + 0.6 * (new_value - old_value);
}

} // namespace

MixtureParams
calibrateToTargets(const StatTargets &t)
{
    MixtureParams p;
    p.clipK = 4.0;

    // Outlier temporal correlation from the range compression ratio:
    // ratio = 1 / sqrt(2 (1 - rhoT2)).
    DITTO_ASSERT(t.rangeRatio > 0.5, "implausible range ratio target");
    p.rhoT2 = clampRho(1.0 - 1.0 / (2.0 * t.rangeRatio * t.rangeRatio));

    for (int iter = 0; iter < 150; ++iter) {
        // Near-zero spike std tracks the quantization step. The 0.6
        // factor keeps roughly 60% of the spike inside the zero code,
        // which leaves headroom for the spike's spatial correlation to
        // control the spatial-difference zeros (dead channels are flat,
        // so their spatial diffs vanish even though the channel itself
        // only partially quantizes to zero).
        p.sigma0 = 0.6 * quantScale(p);

        // beta <- activation <=4-bit fraction (coarser scale -> more
        // values land within 7 codes).
        p.beta = damp(p.beta, bisectMonotone(
            [&](double beta) {
                MixtureParams q = p;
                q.beta = beta;
                q.sigma0 = 0.6 * quantScale(q);
                return activationFractions(q).atMost4();
            },
            t.le4A, 1.05, 40.0));
        p.sigma0 = 0.6 * quantScale(p);

        // w0 <- activation zero fraction.
        p.w0 = damp(p.w0, bisectMonotone(
            [&](double w0) {
                MixtureParams q = p;
                q.w0 = w0;
                return activationFractions(q).zero;
            },
            t.zeroA, 0.0, 0.7));

        // rhoT1 <- temporal-difference zero fraction. The near-zero
        // component correlates like the bulk.
        p.rhoT1 = damp(p.rhoT1, bisectMonotone(
            [&](double rho) {
                MixtureParams q = p;
                q.rhoT1 = clampRho(rho);
                q.rhoT0 = q.rhoT1;
                return temporalDiffFractions(q).zero;
            },
            t.zeroT, 0.2, kRhoMax));
        p.rhoT0 = p.rhoT1;

        // jumpProb <- temporal-difference <=4-bit fraction: more heavy-
        // tail jumps push differences past the 4-bit boundary.
        p.jumpProb = damp(p.jumpProb, bisectMonotone(
            [&](double jp) {
                MixtureParams q = p;
                q.jumpProb = jp;
                return temporalDiffFractions(q).atMost4();
            },
            t.le4T, 0.0, 0.35));

        // w2 <- temporal cosine similarity. Both directions occur: when
        // rhoT2 < rhoT1 more outlier mass lowers the cosine, otherwise
        // it raises it; bisectMonotone detects the direction. The lower
        // bound keeps a real outlier population even when the cosine
        // target is unreachable (zeroT pins the bulk correlation above
        // the target), because the spatial balance below needs the
        // outlier variance.
        p.w2 = damp(p.w2, bisectMonotone(
            [&](double w2) {
                MixtureParams q = p;
                q.w2 = w2;
                return temporalCosine(q);
            },
            t.cosT, 0.05, 0.3));

        // rhoS0 <- spatial-difference zero fraction. The spike's
        // variance share is negligible, so this knob barely moves the
        // spatial cosine.
        p.rhoS0 = damp(p.rhoS0, bisectMonotone(
            [&](double rho) {
                MixtureParams q = p;
                q.rhoS0 = clampRho(rho);
                return spatialDiffFractions(q).zero;
            },
            t.zeroS, -0.9, kRhoMax));

        // rhoS1 <- spatial-difference <=4-bit fraction (bulk-driven).
        p.rhoS1 = damp(p.rhoS1, bisectMonotone(
            [&](double rho) {
                MixtureParams q = p;
                q.rhoS1 = clampRho(rho);
                return spatialDiffFractions(q).atMost4();
            },
            t.le4S, -0.9, kRhoMax));

        // rhoS2 <- spatial cosine similarity, closed form on the
        // variance-weighted average.
        const double v0 = p.w0 * p.sigma0 * p.sigma0;
        const double v1 = p.w1();
        const double v2 = p.w2 * p.beta * p.beta;
        const double want = t.cosS * (v0 + v1 + v2);
        p.rhoS2 = clampRho(
            (want - v0 * p.rhoS0 - v1 * p.rhoS1) / std::max(v2, 1e-12));
    }
    return p;
}

const MixtureParams &
calibratedParams(ModelId id)
{
    static std::map<ModelId, MixtureParams> cache;
    auto it = cache.find(id);
    if (it == cache.end())
        it = cache.emplace(id, calibrateToTargets(statTargets(id))).first;
    return it->second;
}

//
// Disk cache for calibrated quantizer scales.
//

namespace {

constexpr const char *kScaleCacheMagic = "ditto-scales";
constexpr int kScaleCacheVersion = 1;

std::string
scaleCachePath(const std::string &dir, uint64_t key)
{
    char name[64];
    std::snprintf(name, sizeof(name), "scales-%016llx.txt",
                  static_cast<unsigned long long>(key));
    return dir + "/" + name;
}

} // namespace

uint64_t
hashMix(uint64_t h, uint64_t value)
{
    // Fold each byte of `value` into an FNV-1a accumulator.
    constexpr uint64_t kPrime = 1099511628211ull;
    for (int i = 0; i < 8; ++i) {
        h ^= (value >> (i * 8)) & 0xFF;
        h *= kPrime;
    }
    return h;
}

std::string
calibrationCacheDir()
{
    if (env::readFlag("DITTO_NO_CACHE"))
        return {};
    return env::readString("DITTO_CACHE_DIR", ".ditto-cache");
}

bool
loadCachedScales(uint64_t key, size_t expected_count,
                 std::vector<float> *out)
{
    const std::string dir = calibrationCacheDir();
    if (dir.empty())
        return false;
    std::FILE *f = std::fopen(scaleCachePath(dir, key).c_str(), "r");
    if (!f)
        return false;
    char magic[32] = {};
    int version = 0;
    unsigned long long count = 0;
    bool ok = std::fscanf(f, "%31s %d %llu", magic, &version, &count) == 3 &&
              std::strcmp(magic, kScaleCacheMagic) == 0 &&
              version == kScaleCacheVersion && count == expected_count;
    std::vector<float> scales;
    if (ok) {
        scales.reserve(expected_count);
        for (size_t i = 0; i < expected_count; ++i) {
            // Hexfloat as written by storeCachedScales: exact round-trip.
            double v = 0.0;
            if (std::fscanf(f, "%la", &v) != 1) {
                ok = false;
                break;
            }
            scales.push_back(static_cast<float>(v));
        }
    }
    std::fclose(f);
    if (ok)
        *out = std::move(scales);
    return ok;
}

void
storeCachedScales(uint64_t key, const std::vector<float> &scales)
{
    const std::string dir = calibrationCacheDir();
    if (dir.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return; // best-effort: an unwritable cache is a cache miss
    const std::string path = scaleCachePath(dir, key);
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f)
        return;
    std::fprintf(f, "%s %d %llu\n", kScaleCacheMagic, kScaleCacheVersion,
                 static_cast<unsigned long long>(scales.size()));
    for (float s : scales)
        std::fprintf(f, "%a\n", static_cast<double>(s));
    const bool ok = std::fflush(f) == 0;
    std::fclose(f);
    if (ok)
        std::filesystem::rename(tmp, path, ec); // atomic publish
    if (!ok || ec)
        std::filesystem::remove(tmp, ec);
}

} // namespace ditto
