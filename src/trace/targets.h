/**
 * @file
 * Per-model statistical calibration targets.
 *
 * Each entry is the set of headline statistics the paper reports (or
 * that we read off its figures) for one benchmark model. The calibrator
 * in calibrate.h fits mixture parameters to these targets; the bench
 * binaries then re-measure the statistics from the fitted model so
 * EXPERIMENTS.md can record paper-vs-measured.
 *
 * Provenance codes used in targets.cc:
 *  (a) number stated in the paper text,
 *  (b) bar height read off a figure to ~1 significant digit,
 *  (c) interpolated so the 7-model average matches a stated average.
 */
#ifndef DITTO_TRACE_TARGETS_H
#define DITTO_TRACE_TARGETS_H

#include "model/zoo.h"

namespace ditto {

/** Calibration targets for one model. */
struct StatTargets
{
    double cosT = 0.98;       //!< temporal cosine similarity (Fig. 3b)
    double cosS = 0.31;       //!< spatial cosine similarity (Fig. 3b)
    double rangeRatio = 8.96; //!< act range / temporal diff range (Fig. 4b)
    double zeroT = 0.4448;    //!< zero fraction of temporal diffs (Fig. 5)
    double le4T = 0.9601;     //!< <=4-bit fraction of temporal diffs
    double zeroA = 0.1836;    //!< zero fraction of activations
    double le4A = 0.5772;     //!< <=4-bit fraction of activations
    double zeroS = 0.2644;    //!< zero fraction of spatial diffs
    double le4S = 0.7442;     //!< <=4-bit fraction of spatial diffs
    double avgActRange = 12.0; //!< mean activation value range (Fig. 4b)
};

/** Targets for one model of the zoo. */
const StatTargets &statTargets(ModelId id);

} // namespace ditto

#endif // DITTO_TRACE_TARGETS_H
