/**
 * @file
 * Fig. 6 — relative BOPs of activation / spatial-difference /
 * temporal-difference processing (6a) and the per-step series of the
 * two named SDM layers (6b).
 */
#include <iostream>

#include "sim/experiments.h"
#include "sim/table_printer.h"

int
main()
{
    using namespace ditto;
    std::cout << "== Fig. 6a: relative BOPs (Act = 1.0) ==\n";
    TablePrinter t({"Model", "Activation", "Spatial diff",
                    "Temporal diff"});
    double sum_s = 0.0;
    double sum_t = 0.0;
    const auto rows = runFig6Bops();
    for (const BopsRow &r : rows) {
        t.addRow(r.model, TablePrinter::num(r.act),
                 TablePrinter::num(r.spatial),
                 TablePrinter::num(r.temporal));
        sum_s += r.spatial;
        sum_t += r.temporal;
    }
    t.addRow("AVG.", TablePrinter::num(1.0),
             TablePrinter::num(sum_s / rows.size()),
             TablePrinter::num(sum_t / rows.size()));
    t.print();
    std::cout << "Paper: temporal 53.3% below act (DDPM 68.8%, CHUR "
                 "71.5%), 23.1% below spatial\n";

    std::cout << "\n== Fig. 6b: SDM per-step relative BOPs ==\n";
    for (const BopsSeries &s : runFig6StepDetail()) {
        std::cout << "layer " << s.layer << ":\n";
        TablePrinter d({"Adjacent steps", "Relative BOPs vs Act"});
        const int n = static_cast<int>(s.relativeBops.size());
        for (int start = 0; start < n; start += 10) {
            const int end = std::min(start + 10, n) - 1;
            double sum = 0.0;
            for (int i = start; i <= end; ++i)
                sum += s.relativeBops[i];
            d.addRow(std::to_string(start) + ".." + std::to_string(end),
                     TablePrinter::num(sum / (end - start + 1)));
        }
        d.print();
    }
    std::cout << "Paper: reduction consistent across steps; the final "
                 "steps reduce least but stay below 1.0\n";
    return 0;
}
