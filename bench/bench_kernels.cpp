/**
 * @file
 * google-benchmark microbenchmarks of the functional substrate: the
 * integer GEMM kernels, the difference engines, the Encoding Unit and
 * the adder-tree PE. These measure this library's software kernels
 * (used by the tests and functional pipeline), not the modelled
 * accelerator — the accelerator's performance claims come from the
 * cycle model, not wall-clock time.
 */
#include <benchmark/benchmark.h>

#include "core/diff_linear.h"
#include "hw/encoding_unit.h"
#include "hw/pe.h"
#include "quant/quantizer.h"
#include "tensor/ops.h"
#include "trace/calibrate.h"
#include "trace/sampler.h"

namespace {

using namespace ditto;

Int8Tensor
randomInt8(int64_t rows, int64_t cols, uint64_t seed)
{
    Rng rng(seed);
    Int8Tensor t(Shape{rows, cols});
    t.fillUniformInt(rng, -127, 127);
    return t;
}

void
BM_MatmulInt8(benchmark::State &state)
{
    const int64_t n = state.range(0);
    const Int8Tensor a = randomInt8(n, n, 1);
    const Int8Tensor b = randomInt8(n, n, 2);
    for (auto _ : state) {
        Int32Tensor c = matmulInt8(a, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulInt8)->Arg(32)->Arg(64)->Arg(128);

void
BM_FcDirectVsDiff(benchmark::State &state)
{
    const int64_t n = state.range(0);
    const bool diff = state.range(1) != 0;
    DiffFcEngine engine(randomInt8(n, n, 3));
    // Make adjacent-step inputs genuinely similar so the diff path sees
    // realistic sparsity.
    MixtureSampler sampler(calibratedParams(ModelId::SDM), 4);
    const auto seq = sampler.sampleSequence(n * n, 2);
    const QuantParams qp = chooseDynamicScale(seq[0]);
    Int8Tensor x0 = quantize(seq[0], qp);
    Int8Tensor x1 = quantize(seq[1], qp);
    Int8Tensor x0m(Shape{n, n});
    Int8Tensor x1m(Shape{n, n});
    for (int64_t i = 0; i < n * n; ++i) {
        x0m.at(i) = x0.at(i);
        x1m.at(i) = x1.at(i);
    }
    const Int32Tensor out0 = engine.runDirect(x0m);
    for (auto _ : state) {
        Int32Tensor out = diff ? engine.runDiff(x1m, x0m, out0)
                               : engine.runDirect(x1m);
        benchmark::DoNotOptimize(out.data().data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_FcDirectVsDiff)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({128, 0})
    ->Args({128, 1});

void
BM_EncodingUnit(benchmark::State &state)
{
    const int64_t elems = state.range(0);
    MixtureSampler sampler(calibratedParams(ModelId::DDPM), 5);
    const auto seq = sampler.sampleSequence(elems, 2);
    const QuantParams qp = chooseDynamicScale(seq[0]);
    const Int8Tensor prev = quantize(seq[0], qp);
    const Int8Tensor cur = quantize(seq[1], qp);
    const EncodingUnit eu;
    for (auto _ : state) {
        EncodedStream s = eu.encodeTemporal(cur, prev);
        benchmark::DoNotOptimize(s.lanes.data());
    }
    state.SetItemsProcessed(state.iterations() * elems);
}
BENCHMARK(BM_EncodingUnit)->Arg(1 << 12)->Arg(1 << 16);

void
BM_AdderTreePe(benchmark::State &state)
{
    const int64_t elems = state.range(0);
    MixtureSampler sampler(calibratedParams(ModelId::SDM), 6);
    const auto seq = sampler.sampleSequence(elems, 2);
    const QuantParams qp = chooseDynamicScale(seq[0]);
    const Int8Tensor prev = quantize(seq[0], qp);
    const Int8Tensor cur = quantize(seq[1], qp);
    const Int8Tensor weights = randomInt8(elems, 1, 7);
    const EncodingUnit eu;
    const EncodedStream stream = eu.encodeTemporal(cur, prev);
    const AdderTreePe pe;
    for (auto _ : state) {
        PeRunResult r = pe.run(stream, [&](int32_t i) {
            return weights.at(i);
        });
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations() * elems);
}
BENCHMARK(BM_AdderTreePe)->Arg(1 << 12)->Arg(1 << 16);

void
BM_Conv2dInt8(benchmark::State &state)
{
    const int64_t ch = state.range(0);
    Rng rng(8);
    Int8Tensor input(Shape{1, ch, 16, 16});
    input.fillUniformInt(rng, -127, 127);
    Int8Tensor weight(Shape{ch, ch, 3, 3});
    weight.fillUniformInt(rng, -127, 127);
    const Conv2dParams p{ch, ch, 3, 1, 1};
    for (auto _ : state) {
        Int32Tensor out = conv2dInt8(input, weight, p);
        benchmark::DoNotOptimize(out.data().data());
    }
    state.SetItemsProcessed(state.iterations() * ch * ch * 9 * 16 * 16);
}
BENCHMARK(BM_Conv2dInt8)->Arg(16)->Arg(32);

} // namespace

BENCHMARK_MAIN();
