/**
 * @file
 * google-benchmark microbenchmarks of the functional substrate: the
 * blocked kernel library against its retained naive:: references, the
 * difference engines, the Encoding Unit and the adder-tree PE. These
 * measure this library's software kernels (used by the tests and
 * functional pipeline), not the modelled accelerator — the
 * accelerator's performance claims come from the cycle model, not
 * wall-clock time.
 *
 * Results are always emitted to BENCH_kernels.json (google-benchmark
 * JSON format, thread count recorded in the context) so the kernel
 * perf trajectory is tracked PR over PR; pass --benchmark_out=... to
 * redirect.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/parallel.h"
#include "core/diff_linear.h"
#include "core/mini_unet.h"
#include "hw/encoding_unit.h"
#include "hw/pe.h"
#include "quant/encoder.h"
#include "quant/quantizer.h"
#include "runtime/compiled.h"
#include "runtime/presets.h"
#include "serve/server.h"
#include "shard/router.h"
#include "shard/worker.h"
#include "tensor/ops.h"
#include "tensor/simd/simd.h"
#include "trace/calibrate.h"
#include "trace/sampler.h"

namespace {

using namespace ditto;

Int8Tensor
randomInt8(int64_t rows, int64_t cols, uint64_t seed)
{
    Rng rng(seed);
    Int8Tensor t(Shape{rows, cols});
    t.fillUniformInt(rng, -127, 127);
    return t;
}

FloatTensor
randomFloat(const Shape &shape, uint64_t seed)
{
    Rng rng(seed);
    FloatTensor t(shape);
    t.fillNormal(rng, 0.0, 1.0);
    return t;
}

void
BM_MatmulInt8(benchmark::State &state)
{
    const int64_t n = state.range(0);
    const Int8Tensor a = randomInt8(n, n, 1);
    const Int8Tensor b = randomInt8(n, n, 2);
    for (auto _ : state) {
        Int32Tensor c = matmulInt8(a, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulInt8)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void
BM_MatmulInt8Naive(benchmark::State &state)
{
    const int64_t n = state.range(0);
    const Int8Tensor a = randomInt8(n, n, 1);
    const Int8Tensor b = randomInt8(n, n, 2);
    for (auto _ : state) {
        Int32Tensor c = naive::matmulInt8(a, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulInt8Naive)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void
BM_MatmulFloat(benchmark::State &state)
{
    const int64_t n = state.range(0);
    const FloatTensor a = randomFloat(Shape{n, n}, 1);
    const FloatTensor b = randomFloat(Shape{n, n}, 2);
    for (auto _ : state) {
        FloatTensor c = matmul(a, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulFloat)->Arg(64)->Arg(128)->Arg(256);

void
BM_MatmulFloatNaive(benchmark::State &state)
{
    const int64_t n = state.range(0);
    const FloatTensor a = randomFloat(Shape{n, n}, 1);
    const FloatTensor b = randomFloat(Shape{n, n}, 2);
    for (auto _ : state) {
        FloatTensor c = naive::matmul(a, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulFloatNaive)->Arg(64)->Arg(128)->Arg(256);

void
BM_MatmulDiffInt16(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(3);
    Int16Tensor a(Shape{n, n});
    a.fillUniformInt(rng, -254, 254);
    const Int8Tensor b = randomInt8(n, n, 4);
    for (auto _ : state) {
        Int32Tensor c = matmulDiffInt16(a, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulDiffInt16)->Arg(64)->Arg(128);

void
BM_MatmulDiffInt16Naive(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(3);
    Int16Tensor a(Shape{n, n});
    a.fillUniformInt(rng, -254, 254);
    const Int8Tensor b = randomInt8(n, n, 4);
    for (auto _ : state) {
        Int32Tensor c = naive::matmulDiffInt16(a, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulDiffInt16Naive)->Arg(64)->Arg(128);

void
BM_FcDirectVsDiff(benchmark::State &state)
{
    const int64_t n = state.range(0);
    const bool diff = state.range(1) != 0;
    DiffFcEngine engine(randomInt8(n, n, 3));
    // Make adjacent-step inputs genuinely similar so the diff path sees
    // realistic sparsity.
    MixtureSampler sampler(calibratedParams(ModelId::SDM), 4);
    const auto seq = sampler.sampleSequence(n * n, 2);
    const QuantParams qp = chooseDynamicScale(seq[0]);
    Int8Tensor x0 = quantize(seq[0], qp);
    Int8Tensor x1 = quantize(seq[1], qp);
    Int8Tensor x0m(Shape{n, n});
    Int8Tensor x1m(Shape{n, n});
    for (int64_t i = 0; i < n * n; ++i) {
        x0m.at(i) = x0.at(i);
        x1m.at(i) = x1.at(i);
    }
    const Int32Tensor out0 = engine.runDirect(x0m);
    for (auto _ : state) {
        // ForceDiff so the sparse machinery itself is measured even
        // when the software Defo policy would revert at this mix.
        Int32Tensor out = diff ? engine.runDiff(x1m, x0m, out0, nullptr,
                                                DiffPolicy::ForceDiff)
                               : engine.runDirect(x1m);
        benchmark::DoNotOptimize(out.data().data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_FcDirectVsDiff)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({128, 0})
    ->Args({128, 1});

/**
 * Difference matrix with a synthetic zero / low4 / full8 element mix
 * (percentages; the remainder is full8).
 */
Int16Tensor
makeMixDiff(int64_t m, int64_t k, int zero_pct, int low4_pct, uint64_t seed)
{
    Rng rng(seed);
    Int16Tensor t(Shape{m, k});
    for (auto &v : t.data()) {
        const int u = static_cast<int>(rng.uniformInt(100));
        if (u < zero_pct) {
            v = 0;
        } else if (u < zero_pct + low4_pct) {
            const int64_t mag = 1 + static_cast<int64_t>(rng.uniformInt(7));
            v = static_cast<int16_t>(rng.bernoulli(0.5) ? mag : -mag);
        } else {
            const int64_t mag = 8 + static_cast<int64_t>(rng.uniformInt(247));
            v = static_cast<int16_t>(rng.bernoulli(0.5) ? mag : -mag);
        }
    }
    return t;
}

/**
 * Sparse diff path at a synthetic zero/low4/full8 mix: encode the
 * difference into a panel plan and execute the plan-driven GEMM,
 * accumulating into the previous output — everything a Ditto step
 * pays after quantization. Args: {zero %, low4 %}; remainder full8.
 */
void
BM_DiffGemmSparse(benchmark::State &state)
{
    const int64_t n = 256;
    const Int16Tensor diff =
        makeMixDiff(n, n, static_cast<int>(state.range(0)),
                    static_cast<int>(state.range(1)), 40);
    // Steady state of a weight-stationary layer: the engine caches the
    // transposed weight once, so each step pays encode + plan GEMM.
    const Int8Tensor wt = transposeInt8(randomInt8(n, n, 41));
    Rng rng(42);
    Int32Tensor prev(Shape{n, n});
    prev.fillUniformInt(rng, -100000, 100000);
    for (auto _ : state) {
        const DiffGemmPlan plan = encodeDiff(diff);
        Int32Tensor out = matmulDiffPlan(plan, wt, &prev);
        benchmark::DoNotOptimize(out.data().data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_DiffGemmSparse)
    ->Args({90, 9})
    ->Args({70, 25})
    ->Args({0, 0});

/** Dense diff baseline on the same mixes: full int16 GEMM + add. */
void
BM_DiffGemmDense(benchmark::State &state)
{
    const int64_t n = 256;
    const Int16Tensor diff =
        makeMixDiff(n, n, static_cast<int>(state.range(0)),
                    static_cast<int>(state.range(1)), 40);
    const Int8Tensor w = randomInt8(n, n, 41);
    Rng rng(42);
    Int32Tensor prev(Shape{n, n});
    prev.fillUniformInt(rng, -100000, 100000);
    for (auto _ : state) {
        Int32Tensor out =
            addInt32(prev, matmulTransposedDiffInt16(diff, w));
        benchmark::DoNotOptimize(out.data().data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_DiffGemmDense)
    ->Args({90, 9})
    ->Args({70, 25})
    ->Args({0, 0});

/**
 * Dense int8 direct baseline at the diff-GEMM shape: what a
 * QuantDirect step pays for the same layer. The acceptance target is
 * sparse-diff >= 2x over this at a >= 70% zero+low4 mix.
 */
void
BM_DiffGemmInt8Direct(benchmark::State &state)
{
    const int64_t n = 256;
    const Int8Tensor x = randomInt8(n, n, 43);
    const Int8Tensor w = randomInt8(n, n, 41);
    for (auto _ : state) {
        Int32Tensor out = matmulTransposedInt8(x, w);
        benchmark::DoNotOptimize(out.data().data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_DiffGemmInt8Direct);

/** Software Encoding Unit alone (plan construction cost). */
void
BM_DiffGemmEncode(benchmark::State &state)
{
    const int64_t n = 256;
    const Int16Tensor diff =
        makeMixDiff(n, n, static_cast<int>(state.range(0)),
                    static_cast<int>(state.range(1)), 40);
    for (auto _ : state) {
        DiffGemmPlan plan = encodeDiff(diff);
        benchmark::DoNotOptimize(plan.panels.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_DiffGemmEncode)->Args({90, 9})->Args({70, 25});

/**
 * End-to-end MiniUnet rollout wall-clock, QuantDirect vs QuantDitto:
 * the paper's claim that difference processing is faster, measured in
 * software. Arg: 1 = Ditto.
 */
void
BM_MiniUnetRollout(benchmark::State &state)
{
    setenv("DITTO_NO_CACHE", "1", 0); // keep bench runs hermetic
    MiniUnetConfig cfg;
    cfg.channels = 32;
    cfg.resolution = 16;
    cfg.steps = 8;
    const MiniUnet net(cfg);
    const RunMode mode =
        state.range(0) ? RunMode::QuantDitto : RunMode::QuantDirect;
    for (auto _ : state) {
        RolloutResult r = net.rollout(mode);
        benchmark::DoNotOptimize(r.finalImage.data().data());
    }
    state.SetItemsProcessed(state.iterations() * cfg.steps);
}
BENCHMARK(BM_MiniUnetRollout)->Arg(0)->Arg(1);

/** Shared serving-shape model for the batched rollout benchmarks. */
const MiniUnet &
servingNet()
{
    static const MiniUnet *net = [] {
        setenv("DITTO_NO_CACHE", "1", 0);
        MiniUnetConfig cfg;
        cfg.channels = 16;
        cfg.resolution = 8;
        cfg.steps = 8;
        return new MiniUnet(cfg);
    }();
    return *net;
}

/**
 * Batched rollout throughput at the serving shape: N concurrent
 * QuantDitto requests through MiniUnet::rolloutBatch. Arg: batch size
 * (1 = the sequential baseline; the acceptance comparison is
 * items_per_second at batch 8 vs batch 1). Results are bitwise
 * identical across batch sizes — the batch changes wall-clock only.
 */
void
BM_BatchedRollout(benchmark::State &state)
{
    const int64_t batch = state.range(0);
    const MiniUnet &net = servingNet();
    std::vector<FloatTensor> noises;
    for (int64_t b = 0; b < batch; ++b)
        noises.push_back(net.requestNoise(static_cast<uint64_t>(b + 1)));
    for (auto _ : state) {
        std::vector<RolloutResult> results =
            net.rolloutBatch(RunMode::QuantDitto, noises);
        benchmark::DoNotOptimize(results.data());
    }
    // Throughput in rollouts (requests) per second.
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BatchedRollout)->Arg(1)->Arg(4)->Arg(8)->Arg(16)->UseRealTime();

/**
 * End-to-end serving latency: a burst of `batch` requests through the
 * async DenoiseServer (queue, batch formation, continuous batching).
 * Reports per-request latency percentiles as counters alongside the
 * burst wall-clock.
 */
void
BM_ServeLatency(benchmark::State &state)
{
    const int64_t batch = state.range(0);
    const MiniUnet &net = servingNet();
    ServerConfig cfg;
    cfg.maxBatch = batch;
    cfg.maxWaitMicros = 2000;
    cfg.workers = 1;
    std::vector<double> latencies;
    for (auto _ : state) {
        DenoiseServer server(net.compiled(), cfg);
        std::vector<uint64_t> ids;
        for (int64_t b = 0; b < batch; ++b) {
            DenoiseRequest req;
            req.seed = static_cast<uint64_t>(b + 1);
            ids.push_back(server.submit(req));
        }
        for (uint64_t id : ids) {
            DenoiseResult res = server.wait(id);
            latencies.push_back(res.queueMicros + res.serviceMicros);
            benchmark::DoNotOptimize(res.image.data().data());
        }
    }
    std::sort(latencies.begin(), latencies.end());
    state.counters["p50_us"] = latencies[latencies.size() / 2];
    state.counters["p95_us"] = latencies[latencies.size() * 95 / 100];
    state.counters["p99_us"] = latencies[latencies.size() * 99 / 100];
    // The rollouts run on the server's worker threads, so the bench
    // thread's CPU time is meaningless — report wall-clock rates.
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ServeLatency)->Arg(1)->Arg(4)->Arg(8)->Arg(16)->UseRealTime();

/**
 * Overload-regime serving: open-loop arrivals at a multiple of the
 * engine's service rate against a small bounded queue, with the shed
 * watermarks inside it. Exercises the hardening path end to end:
 * admission rejections, shedding (BestEffort rejected, Standard
 * degraded) and the class-ordered queue under sustained pressure.
 *
 * Args: {maxBatch, overload factor}. Factor 1 approximates the
 * critically loaded regime; factor >= 2 is the acceptance regime
 * (arrival rate at least twice the service rate). Counters report the
 * highest class's latency (p50/p95_us over Interactive completions),
 * the overall rejection fraction and the degraded fraction — under
 * overload the rejection fraction must be positive (the queue is
 * bounded) while Interactive latency stays near its uncontended value.
 */
void
BM_ServeOverload(benchmark::State &state)
{
    const int64_t batch = state.range(0);
    const int64_t factor = state.range(1);
    const MiniUnet &net = servingNet();
    // Estimate the service rate once: requests/second one engine
    // sustains at this batch size.
    const auto c0 = std::chrono::steady_clock::now();
    {
        RolloutResult r = net.rollout(RunMode::QuantDitto);
        benchmark::DoNotOptimize(r.finalImage.data().data());
    }
    const double rollout_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      c0)
            .count();
    const double service_rate =
        static_cast<double>(batch) / std::max(rollout_s, 1e-6);
    const double arrival_rate =
        service_rate * static_cast<double>(factor);

    ServerConfig cfg;
    cfg.maxBatch = batch;
    cfg.maxWaitMicros = 500;
    cfg.workers = 1;
    cfg.queueCapacity = 16; // bounded: overload must shed, not grow
    const int64_t kArrivals = 48;
    std::vector<double> interactive_us;
    uint64_t total = 0, rejected = 0, degraded = 0;
    for (auto _ : state) {
        DenoiseServer server(net.compiled(), cfg);
        std::vector<uint64_t> ids;
        const auto gap = std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(1.0 / arrival_rate));
        auto next = std::chrono::steady_clock::now();
        for (int64_t i = 0; i < kArrivals; ++i) {
            DenoiseRequest req;
            req.seed = static_cast<uint64_t>(i + 1);
            req.slo = i % 4 == 0 ? SloClass::Interactive
                      : i % 4 == 3 ? SloClass::BestEffort
                                   : SloClass::Standard;
            ids.push_back(server.submit(req));
            next += gap;
            std::this_thread::sleep_until(next);
        }
        for (int64_t i = 0; i < kArrivals; ++i) {
            DenoiseResult res = server.wait(ids[static_cast<size_t>(i)]);
            ++total;
            if (res.status == RequestStatus::Rejected)
                ++rejected;
            if (res.degraded)
                ++degraded;
            if (res.status == RequestStatus::Done &&
                res.slo == SloClass::Interactive)
                interactive_us.push_back(res.queueMicros +
                                         res.serviceMicros);
            benchmark::DoNotOptimize(res.steps);
        }
    }
    std::sort(interactive_us.begin(), interactive_us.end());
    state.counters["p50_us"] =
        interactive_us.empty()
            ? 0.0
            : interactive_us[interactive_us.size() / 2];
    state.counters["p95_us"] =
        interactive_us.empty()
            ? 0.0
            : interactive_us[interactive_us.size() * 95 / 100];
    state.counters["reject_pct"] =
        total ? 100.0 * static_cast<double>(rejected) /
                    static_cast<double>(total)
              : 0.0;
    state.counters["degraded_pct"] =
        total ? 100.0 * static_cast<double>(degraded) /
                    static_cast<double>(total)
              : 0.0;
    state.SetItemsProcessed(state.iterations() * kArrivals);
}
BENCHMARK(BM_ServeOverload)
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 4})
    ->Args({8, 2})
    ->UseRealTime();

/**
 * Inter-request reuse under redundant traffic: bursts of requests
 * where `dup_pct` percent repeat one of a small pool of
 * (seed, conditioning) identities and the rest are unique. One server
 * (and its reuse cache) persists across iterations, so duplicate
 * arrivals warm-start from checkpoints left by earlier requests of
 * the same identity — exactly the production pattern the cache
 * targets (docs/reuse_cache.md).
 *
 * Arg: duplicate percentage (0 = all-unique baseline; the acceptance
 * comparison is p50_us at 90 vs 0). Counters report per-request
 * latency percentiles plus the cache's cumulative hit rate and saved
 * steps. Warm results are bitwise identical to cold — the cache
 * changes wall-clock only.
 */
void
BM_ServeReuse(benchmark::State &state)
{
    const int64_t dup_pct = state.range(0);
    const MiniUnet &net = servingNet();
    ServerConfig cfg;
    cfg.maxBatch = 4;
    cfg.maxWaitMicros = 500;
    cfg.workers = 1;
    cfg.reuse.capBytes = 64ll << 20;
    cfg.reuse.checkpointEvery = 2;
    DenoiseServer server(net.compiled(), cfg);
    const int64_t kArrivals = 32, kPool = 4;
    std::vector<double> latencies;
    uint64_t fresh_seed = 1;
    for (auto _ : state) {
        std::vector<uint64_t> ids;
        for (int64_t i = 0; i < kArrivals; ++i) {
            DenoiseRequest req;
            // Deterministic mix: i*100/kArrivals sweeps 0..100, so
            // dup_pct percent of each burst hits the identity pool.
            if (i * 100 / kArrivals < dup_pct) {
                req.seed = 1'000'000 + static_cast<uint64_t>(i % kPool);
                req.conditioning =
                    0xD151'C0DEull + static_cast<uint64_t>(i % kPool);
            } else {
                req.seed = fresh_seed++;
            }
            ids.push_back(server.submit(req));
        }
        for (uint64_t id : ids) {
            DenoiseResult res = server.wait(id);
            latencies.push_back(res.queueMicros + res.serviceMicros);
            benchmark::DoNotOptimize(res.image.data().data());
        }
    }
    std::sort(latencies.begin(), latencies.end());
    state.counters["p50_us"] = latencies[latencies.size() / 2];
    state.counters["p95_us"] = latencies[latencies.size() * 95 / 100];
    const ServeMetrics sm = server.metrics();
    state.counters["hit_rate"] = sm.reuseHitRate();
    state.counters["steps_saved"] =
        static_cast<double>(sm.reuseStepsSaved);
    state.SetItemsProcessed(state.iterations() * kArrivals);
}
BENCHMARK(BM_ServeReuse)->Arg(0)->Arg(50)->Arg(90)->UseRealTime();

/**
 * Scale-out serving tier: N in-process shard workers behind the
 * front-door router, speaking the real wire protocol over Unix-domain
 * sockets (src/shard/). Bursts of requests go through
 * ShardRouter::submit/wait exactly as a remote client's would through
 * the front door, so the measurement includes framing, routing and
 * per-RPC socket round trips — the true tier overhead, not a
 * function-call approximation.
 *
 * Args: {workers, dup_pct}. dup_pct = 0 is the all-unique scaling
 * row (the acceptance comparison is items_per_second at workers N vs
 * workers 1, expected >= 0.8*N on an N-core host — on fewer cores the
 * workers contend for the same CPU and the ratio records that
 * honestly); dup_pct = 90 measures prefix-affinity routing keeping
 * the per-worker reuse caches warm (hit_rate counter).
 * tools/run_shard_scaling.sh appends the multi-process variant of the
 * workers sweep to BENCH_kernels.json.
 */
void
BM_ShardRouter(benchmark::State &state)
{
    const int64_t workers = state.range(0);
    const int64_t dup_pct = state.range(1);
    const MiniUnet &net = servingNet();
    ServerConfig cfg;
    cfg.maxBatch = 4;
    cfg.maxWaitMicros = 500;
    cfg.workers = 1;
    cfg.queueCapacity = 256;
    cfg.reuse.capBytes = 64ll << 20;
    cfg.reuse.checkpointEvery = 2;

    std::vector<std::unique_ptr<shard::ShardWorker>> tier;
    shard::ShardRouter router;
    for (int64_t i = 0; i < workers; ++i) {
        char path[96];
        std::snprintf(path, sizeof path, "/tmp/ditto_bm_%d_%lld_%lld.sock",
                      static_cast<int>(getpid()),
                      static_cast<long long>(workers * 1000 + dup_pct),
                      static_cast<long long>(i));
        std::remove(path);
        tier.push_back(std::make_unique<shard::ShardWorker>(
            net.compiled(), path, cfg));
        std::string why;
        if (!tier.back()->start(&why) || !router.addWorker(path, &why)) {
            state.SkipWithError(why.c_str());
            return;
        }
    }

    const int64_t kArrivals = 32, kPool = 4;
    std::vector<double> latencies;
    uint64_t fresh_seed = 1;
    for (auto _ : state) {
        std::vector<uint64_t> gids;
        for (int64_t i = 0; i < kArrivals; ++i) {
            DenoiseRequest req;
            if (i * 100 / kArrivals < dup_pct) {
                req.seed = 2'000'000 + static_cast<uint64_t>(i % kPool);
                req.conditioning =
                    0x5AD'C0DEull + static_cast<uint64_t>(i % kPool);
            } else {
                req.seed = fresh_seed++;
            }
            gids.push_back(router.submit(req));
        }
        for (uint64_t gid : gids) {
            DenoiseResult res = router.wait(gid);
            latencies.push_back(res.queueMicros + res.serviceMicros);
            benchmark::DoNotOptimize(res.image.data().data());
        }
    }
    std::sort(latencies.begin(), latencies.end());

    // Cross-worker reuse roll-up straight off the merged export.
    const std::string json = router.metricsJson();
    const auto scrape = [&json](const char *key) -> double {
        const std::string needle = std::string("\"") + key + "\":";
        const size_t at = json.find(needle);
        if (at == std::string::npos)
            return 0.0;
        return std::atof(json.c_str() + at + needle.size());
    };
    const double hits = scrape("hits"), misses = scrape("misses");
    state.counters["p95_us"] = latencies[latencies.size() * 95 / 100];
    state.counters["workers"] = static_cast<double>(workers);
    state.counters["hit_rate"] =
        hits + misses > 0 ? hits / (hits + misses) : 0.0;
    state.counters["resubmitted"] = scrape("resubmitted");
    state.SetItemsProcessed(state.iterations() * kArrivals);
}
BENCHMARK(BM_ShardRouter)
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({1, 90})
    ->Args({2, 90})
    ->UseRealTime();

/**
 * Graph-runtime rollouts per compiled preset spec, QuantDirect vs
 * QuantDitto. Arg 0 selects the spec (0 = the MiniUnet preset at the
 * quickstart shape, 1 = the deep multi-scale UNet, 2 = the DiT-style
 * block, 3 = the multi-head attention block, 4 = the adaLN block);
 * Arg 1 = 1 runs Ditto difference processing. The MiniUnet rows
 * measure the compiled path on exactly the workload
 * BM_MiniUnetRollout measures through the wrapper — the two should
 * track each other. tools/check_bench_regression.py compares the
 * per-spec ditto/direct ratios of these rows against the committed
 * BENCH_kernels.json baseline.
 */
const CompiledModel &
compiledSpec(int which)
{
    static const CompiledModel *models[5] = {};
    if (!models[which]) {
        setenv("DITTO_NO_CACHE", "1", 0);
        switch (which) {
          case 0: {
            MiniUnetConfig cfg;
            cfg.channels = 32;
            cfg.resolution = 16;
            cfg.steps = 8;
            models[0] = new CompiledModel(compile(miniUnetSpec(cfg)));
            break;
          }
          case 1: {
            DeepUnetConfig cfg;
            cfg.baseChannels = 16;
            cfg.resolution = 16;
            cfg.steps = 8;
            models[1] = new CompiledModel(compile(deepUnetSpec(cfg)));
            break;
          }
          case 2: {
            DitBlockConfig cfg;
            cfg.embedDim = 32;
            cfg.resolution = 16;
            cfg.steps = 8;
            models[2] = new CompiledModel(compile(ditBlockSpec(cfg)));
            break;
          }
          case 3: {
            MhsaBlockConfig cfg;
            cfg.embedDim = 32;
            cfg.heads = 2;
            cfg.resolution = 16;
            cfg.steps = 8;
            models[3] = new CompiledModel(compile(mhsaBlockSpec(cfg)));
            break;
          }
          default: {
            DitAdaLnConfig cfg;
            cfg.embedDim = 32;
            cfg.resolution = 16;
            cfg.steps = 8;
            models[4] = new CompiledModel(compile(ditAdaLnSpec(cfg)));
            break;
          }
        }
    }
    return *models[which];
}

void
BM_CompiledRollout(benchmark::State &state)
{
    const CompiledModel &model =
        compiledSpec(static_cast<int>(state.range(0)));
    const RunMode mode =
        state.range(1) ? RunMode::QuantDitto : RunMode::QuantDirect;
    for (auto _ : state) {
        RolloutResult r = model.rollout(mode);
        benchmark::DoNotOptimize(r.finalImage.data().data());
    }
    state.SetItemsProcessed(state.iterations() * model.defaultSteps());
    state.SetLabel(model.spec().name +
                   (state.range(1) ? "/ditto" : "/direct"));
}
BENCHMARK(BM_CompiledRollout)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({3, 0})
    ->Args({3, 1})
    ->Args({4, 0})
    ->Args({4, 1});

/**
 * ApproxDitto rollouts per preset across skip thresholds, charting
 * the speed-vs-fidelity trade against the exact QuantDitto rows of
 * BM_CompiledRollout above (same specs, same shapes). Arg 0 selects
 * the spec as in BM_CompiledRollout; Arg 1 is the skip threshold in
 * percent (50 = the DITTO_APPROX_SKIP_THRESH default). Each row
 * records end-to-end fidelity against the exact rollout — psnr_db
 * (clamped to 99 so exact matches stay finite in the JSON), cosine —
 * plus the block skips taken and the fraction of output elements
 * replayed from the previous step. Fidelity is computed once outside
 * the timing loop; the timed region is the plain approximate rollout.
 */
void
BM_ApproxRollout(benchmark::State &state)
{
    CompiledModel model = compiledSpec(static_cast<int>(state.range(0)));
    const double thresh = static_cast<double>(state.range(1)) / 100.0;
    model.setApproxPolicy(thresh, model.approxMaxConsec());
    for (auto _ : state) {
        RolloutResult r = model.rollout(RunMode::ApproxDitto);
        benchmark::DoNotOptimize(r.finalImage.data().data());
    }
    const RolloutResult r = model.rolloutWithFidelity(RunMode::ApproxDitto);
    int64_t skips = 0;
    for (int64_t s : r.nodeSkips)
        skips += s;
    int64_t out_elems = 0;
    for (const CompiledModel::NodeReport &rep : model.nodeReports())
        if (rep.compute)
            out_elems += rep.outElems;
    const int64_t total = out_elems * model.defaultSteps();
    state.counters["psnr_db"] =
        r.fidelity.exact() ? 99.0 : std::min(r.fidelity.psnrDb, 99.0);
    state.counters["cosine"] = r.fidelity.cosine;
    state.counters["block_skips"] = static_cast<double>(skips);
    state.counters["reused_frac"] =
        total > 0
            ? static_cast<double>(r.dittoOps.reusedElems) / total
            : 0.0;
    state.SetItemsProcessed(state.iterations() * model.defaultSteps());
    char label[64];
    std::snprintf(label, sizeof label, "%s/approx@%.2f",
                  model.spec().name.c_str(), thresh);
    state.SetLabel(label);
}
BENCHMARK(BM_ApproxRollout)
    ->Args({0, 25})
    ->Args({0, 50})
    ->Args({0, 75})
    ->Args({1, 25})
    ->Args({1, 50})
    ->Args({1, 75})
    ->Args({2, 25})
    ->Args({2, 50})
    ->Args({2, 75})
    ->Args({3, 25})
    ->Args({3, 50})
    ->Args({3, 75})
    ->Args({4, 25})
    ->Args({4, 50})
    ->Args({4, 75});

void
BM_EncodingUnit(benchmark::State &state)
{
    const int64_t elems = state.range(0);
    MixtureSampler sampler(calibratedParams(ModelId::DDPM), 5);
    const auto seq = sampler.sampleSequence(elems, 2);
    const QuantParams qp = chooseDynamicScale(seq[0]);
    const Int8Tensor prev = quantize(seq[0], qp);
    const Int8Tensor cur = quantize(seq[1], qp);
    const EncodingUnit eu;
    for (auto _ : state) {
        EncodedStream s = eu.encodeTemporal(cur, prev);
        benchmark::DoNotOptimize(s.lanes.data());
    }
    state.SetItemsProcessed(state.iterations() * elems);
}
BENCHMARK(BM_EncodingUnit)->Arg(1 << 12)->Arg(1 << 16);

void
BM_AdderTreePe(benchmark::State &state)
{
    const int64_t elems = state.range(0);
    MixtureSampler sampler(calibratedParams(ModelId::SDM), 6);
    const auto seq = sampler.sampleSequence(elems, 2);
    const QuantParams qp = chooseDynamicScale(seq[0]);
    const Int8Tensor prev = quantize(seq[0], qp);
    const Int8Tensor cur = quantize(seq[1], qp);
    const Int8Tensor weights = randomInt8(elems, 1, 7);
    const EncodingUnit eu;
    const EncodedStream stream = eu.encodeTemporal(cur, prev);
    const AdderTreePe pe;
    for (auto _ : state) {
        PeRunResult r = pe.run(stream, [&](int32_t i) {
            return weights.at(i);
        });
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations() * elems);
}
BENCHMARK(BM_AdderTreePe)->Arg(1 << 12)->Arg(1 << 16);

void
BM_Conv2dInt8(benchmark::State &state)
{
    const int64_t ch = state.range(0);
    Rng rng(8);
    Int8Tensor input(Shape{1, ch, 16, 16});
    input.fillUniformInt(rng, -127, 127);
    Int8Tensor weight(Shape{ch, ch, 3, 3});
    weight.fillUniformInt(rng, -127, 127);
    const Conv2dParams p{ch, ch, 3, 1, 1};
    for (auto _ : state) {
        Int32Tensor out = conv2dInt8(input, weight, p);
        benchmark::DoNotOptimize(out.data().data());
    }
    state.SetItemsProcessed(state.iterations() * ch * ch * 9 * 16 * 16);
}
BENCHMARK(BM_Conv2dInt8)->Arg(16)->Arg(32);

void
BM_Conv2dInt8Naive(benchmark::State &state)
{
    const int64_t ch = state.range(0);
    Rng rng(8);
    Int8Tensor input(Shape{1, ch, 16, 16});
    input.fillUniformInt(rng, -127, 127);
    Int8Tensor weight(Shape{ch, ch, 3, 3});
    weight.fillUniformInt(rng, -127, 127);
    const Conv2dParams p{ch, ch, 3, 1, 1};
    for (auto _ : state) {
        Int32Tensor out = naive::conv2dInt8(input, weight, p);
        benchmark::DoNotOptimize(out.data().data());
    }
    state.SetItemsProcessed(state.iterations() * ch * ch * 9 * 16 * 16);
}
BENCHMARK(BM_Conv2dInt8Naive)->Arg(16)->Arg(32);

void
BM_Conv2dFloat(benchmark::State &state)
{
    const int64_t ch = state.range(0);
    const FloatTensor input = randomFloat(Shape{1, ch, 32, 32}, 9);
    const FloatTensor weight = randomFloat(Shape{ch, ch, 3, 3}, 10);
    const Conv2dParams p{ch, ch, 3, 1, 1};
    for (auto _ : state) {
        FloatTensor out = conv2d(input, weight, nullptr, p);
        benchmark::DoNotOptimize(out.data().data());
    }
    state.SetItemsProcessed(state.iterations() * ch * ch * 9 * 32 * 32);
}
BENCHMARK(BM_Conv2dFloat)->Arg(16)->Arg(32)->Arg(64);

void
BM_Conv2dFloatNaive(benchmark::State &state)
{
    const int64_t ch = state.range(0);
    const FloatTensor input = randomFloat(Shape{1, ch, 32, 32}, 9);
    const FloatTensor weight = randomFloat(Shape{ch, ch, 3, 3}, 10);
    const Conv2dParams p{ch, ch, 3, 1, 1};
    for (auto _ : state) {
        FloatTensor out = naive::conv2d(input, weight, nullptr, p);
        benchmark::DoNotOptimize(out.data().data());
    }
    state.SetItemsProcessed(state.iterations() * ch * ch * 9 * 32 * 32);
}
BENCHMARK(BM_Conv2dFloatNaive)->Arg(16)->Arg(32)->Arg(64);

void
BM_GroupNorm(benchmark::State &state)
{
    const int64_t ch = state.range(0);
    const FloatTensor x = randomFloat(Shape{1, ch, 32, 32}, 11);
    for (auto _ : state) {
        FloatTensor out = groupNorm(x, 2);
        benchmark::DoNotOptimize(out.data().data());
    }
    state.SetItemsProcessed(state.iterations() * ch * 32 * 32);
}
BENCHMARK(BM_GroupNorm)->Arg(32)->Arg(128);

void
BM_GroupNormNaive(benchmark::State &state)
{
    const int64_t ch = state.range(0);
    const FloatTensor x = randomFloat(Shape{1, ch, 32, 32}, 11);
    for (auto _ : state) {
        FloatTensor out = naive::groupNorm(x, 2);
        benchmark::DoNotOptimize(out.data().data());
    }
    state.SetItemsProcessed(state.iterations() * ch * 32 * 32);
}
BENCHMARK(BM_GroupNormNaive)->Arg(32)->Arg(128);

} // namespace

/**
 * Custom main: always mirror results into a JSON file (default
 * BENCH_kernels.json, --benchmark_out overrides) with the worker
 * thread count recorded in the context, so every CI run leaves a
 * machine-readable record of the kernel perf trajectory.
 */
int
main(int argc, char **argv)
{
    benchmark::AddCustomContext("ditto_num_threads",
                                std::to_string(ditto::threadCount()));
    benchmark::AddCustomContext(
        "ditto_simd", ditto::simd::levelName(ditto::simd::activeLevel()));
    bool has_out = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg(argv[i]);
        // Exact flag or --benchmark_out=...; must not match
        // --benchmark_out_format, which alone should not disable the
        // default JSON emission.
        if (arg == "--benchmark_out" ||
            arg.rfind("--benchmark_out=", 0) == 0) {
            has_out = true;
        }
    }
    std::vector<char *> args(argv, argv + argc);
    std::string out_flag = "--benchmark_out=BENCH_kernels.json";
    std::string fmt_flag = "--benchmark_out_format=json";
    if (!has_out) {
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }
    int args_count = static_cast<int>(args.size());
    benchmark::Initialize(&args_count, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
