/**
 * @file
 * Table III — hardware configurations of the baselines and the Ditto
 * hardware, with our synthesis-class core-area estimates justifying
 * the iso-area lane counts.
 */
#include <iostream>

#include "sim/experiments.h"
#include "sim/table_printer.h"

int
main()
{
    using namespace ditto;
    std::cout << "== Table III: hardware configurations ==\n";
    TablePrinter t({"Hardware", "# of lanes", "Bit-width", "Power (W)",
                    "SRAM (MB)", "Area (mm2)", "Est. core area (mm2)"});
    for (const HwConfigRow &r : runTable3HwConfig()) {
        t.addRow(r.hardware, r.lanes, r.pes,
                 TablePrinter::num(r.powerW, 1),
                 TablePrinter::num(r.sramMB, 0),
                 TablePrinter::num(r.areaMm2, 2),
                 TablePrinter::num(r.estCoreAreaMm2, 2));
    }
    t.print();
    std::cout << "Paper: ITC 27648 A8W8 / Diffy & Ditto 39398 A4W8 / "
                 "Cambricon-D 38280 + 2552 outlier, all at 192 MB SRAM, "
                 "1 GHz, 64.48 mm2 total. The estimate column shows the "
                 "iso-area balance of the lane organisations.\n";
    return 0;
}
