/**
 * @file
 * Fig. 8 — algorithm-level relative memory accesses of naive temporal
 * difference processing (before Defo).
 */
#include <iostream>

#include "sim/experiments.h"
#include "sim/table_printer.h"

int
main()
{
    using namespace ditto;
    std::cout << "== Fig. 8: relative memory accesses of naive temporal "
                 "difference processing ==\n";
    TablePrinter t({"Model", "Activation", "Temporal difference"});
    double sum = 0.0;
    const auto rows = runFig8MemAccess();
    for (const MemAccessRow &r : rows) {
        t.addRow(r.model, TablePrinter::num(1.0),
                 TablePrinter::num(r.relativeAccesses, 2));
        sum += r.relativeAccesses;
    }
    t.addRow("AVG.", TablePrinter::num(1.0),
             TablePrinter::num(sum / rows.size(), 2));
    t.print();
    std::cout << "Paper: naive temporal difference processing incurs "
                 "2.75x more memory accesses on average\n";
    return 0;
}
