/**
 * @file
 * Fig. 19 — Dynamic-Ditto on drifting-similarity workloads: traces
 * whose temporal similarity oscillates across the time domain, so the
 * per-layer optimum changes mid-run.
 */
#include <iostream>

#include "sim/experiments.h"
#include "sim/table_printer.h"

int
main()
{
    using namespace ditto;
    const auto rows = runFig19Dynamic();
    std::cout << "== Fig. 19: drifting similarity (speedup vs ITC on "
                 "the same drifted traces) ==\n";
    TablePrinter t({"Model", "Ditto", "Dynamic-Ditto", "Ideal-Ditto",
                    "Defo accuracy"});
    double frac = 0.0;
    double frac_dyn = 0.0;
    double acc = 0.0;
    for (const DynamicRow &r : rows) {
        t.addRow(r.model, TablePrinter::num(r.ditto),
                 TablePrinter::num(r.dynamicDitto),
                 TablePrinter::num(r.idealDitto),
                 TablePrinter::pct(r.defoAccuracy));
        frac += r.ditto / r.idealDitto;
        frac_dyn += r.dynamicDitto / r.idealDitto;
        acc += r.defoAccuracy;
    }
    t.print();
    std::cout << "Ditto reaches " << TablePrinter::pct(frac / rows.size())
              << " and Dynamic-Ditto "
              << TablePrinter::pct(frac_dyn / rows.size())
              << " of Ideal-Ditto; average Defo accuracy "
              << TablePrinter::pct(acc / rows.size()) << "\n";
    std::cout << "Paper: accuracy declines ~7% vs the stationary "
                 "benchmark; Ditto and Dynamic-Ditto reach 98.03% and "
                 "98.18% of ideal, Dynamic-Ditto slightly ahead\n";
    return 0;
}
