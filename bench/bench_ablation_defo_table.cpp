/**
 * @file
 * Extension experiment (beyond the paper): Defo Unit table granularity.
 *
 * The paper fixes the Defo table at 16-bit cycle counters. This
 * ablation sweeps the counter granularity (cycles per stored unit) and
 * measures how often the quantized table's locked decision diverges
 * from the full-precision comparison across every (model, layer),
 * using the simulator's actual first- and second-step cycle counts.
 * It quantifies the headroom behind the paper's "16 bits suffice"
 * design note.
 */
#include <cstdio>
#include <vector>

#include "core/defo.h"
#include "hw/accelerator.h"
#include "hw/cost_model.h"
#include "hw/defo_unit.h"
#include "model/zoo.h"
#include "sim/table_printer.h"
#include "trace/provider.h"

int
main()
{
    using namespace ditto;
    std::cout << "== Extension: Defo table counter-granularity ablation "
                 "==\n";

    // Collect every layer's first-step (act) and second-step (diff)
    // cycles across the seven models on the Ditto configuration.
    struct Sample
    {
        double act, diff;
    };
    std::vector<Sample> samples;
    const HwConfig cfg = makeConfig(HwDesign::Ditto);
    const EnergyTable et;
    for (ModelId id : allModels()) {
        const ModelGraph g = buildModel(id);
        const TraceProvider trace(id, g);
        const auto deps = g.analyzeDependencies();
        const auto onchip = deriveOnChipFlags(g);
        for (const Layer &l : g.layers()) {
            if (!l.isCompute() || l.constPerRun)
                continue;
            const LayerCost act = computeLayerCost(
                cfg, et, l, deps[l.id], onchip[l.id],
                trace.stats(l.id, 0), ExecMode::Act, true);
            const LayerCost diff = computeLayerCost(
                cfg, et, l, deps[l.id], onchip[l.id],
                trace.stats(l.id, 1),
                legaliseMode(cfg, l, ExecMode::TemporalDiff), true);
            samples.push_back({act.totalCycles, diff.totalCycles});
        }
    }

    TablePrinter t({"Shift", "Granularity (cycles)", "Saturated",
                    "Decision flips", "Agreement"});
    for (int shift : {0, 2, 4, 6, 8, 10, 12, 14}) {
        int saturated = 0;
        int flips = 0;
        for (const Sample &s : samples) {
            DefoUnitTable table(shift);
            table.recordFirstStep(0, s.act);
            table.recordSecondStep(0, s.diff);
            const bool exact_diff = s.act > s.diff;
            const bool table_diff =
                table.lockedMode(0) == ExecMode::TemporalDiff;
            if (table.storedActCount(0) == DefoUnitTable::kMaxCount ||
                table.storedDiffCount(0) == DefoUnitTable::kMaxCount) {
                ++saturated;
            }
            if (exact_diff != table_diff)
                ++flips;
        }
        t.addRow(shift, 1 << shift,
                 TablePrinter::pct(static_cast<double>(saturated) /
                                   samples.size()),
                 flips,
                 TablePrinter::pct(1.0 - static_cast<double>(flips) /
                                             samples.size()));
    }
    t.print();
    std::printf("\n%zu layer samples across the seven models. The paper "
                "stores counters in 16\nbits; a granularity of 2^6 "
                "cycles keeps every counter unsaturated while\nflipping "
                "essentially no decisions — the margin behind its "
                "design note.\n",
                samples.size());
    return 0;
}
