/**
 * @file
 * Fig. 14 — relative DRAM accesses of the temporal-difference designs,
 * normalised to ITC.
 */
#include <iostream>

#include "sim/experiments.h"
#include "sim/table_printer.h"

int
main()
{
    using namespace ditto;
    const auto rows = runFig13Comparison();
    std::cout << "== Fig. 14: relative memory accesses vs ITC ==\n";
    TablePrinter t({"Model", "ITC", "Cam-D", "Ditto", "Ditto+"});
    double sums[3] = {};
    int models = 0;
    for (size_t i = 0; i < rows.size(); i += 5) {
        const std::string &model = rows[i].model;
        double camd = 0.0;
        double ditto = 0.0;
        double dittop = 0.0;
        for (size_t j = i; j < i + 5; ++j) {
            if (rows[j].hardware == "Cambricon-D")
                camd = rows[j].relativeMemAccess;
            if (rows[j].hardware == "Ditto")
                ditto = rows[j].relativeMemAccess;
            if (rows[j].hardware == "Ditto+")
                dittop = rows[j].relativeMemAccess;
        }
        t.addRow(model, TablePrinter::num(1.0), TablePrinter::num(camd, 2),
                 TablePrinter::num(ditto, 2),
                 TablePrinter::num(dittop, 2));
        sums[0] += camd;
        sums[1] += ditto;
        sums[2] += dittop;
        ++models;
    }
    t.addRow("AVG.", TablePrinter::num(1.0),
             TablePrinter::num(sums[0] / models, 2),
             TablePrinter::num(sums[1] / models, 2),
             TablePrinter::num(sums[2] / models, 2));
    t.print();
    std::cout << "Paper: Cambricon-D 1.95x, Ditto 1.56x, Ditto+ 1.36x "
                 "more accesses than ITC\n";
    return 0;
}
