/**
 * @file
 * Fig. 17 — fraction of layers Defo reverts to act-style execution
 * (top) and the accuracy of its locked second-step decisions against
 * the oracle optimum (bottom).
 */
#include <iostream>

#include "sim/experiments.h"
#include "sim/table_printer.h"

int
main()
{
    using namespace ditto;
    const auto rows = runFig17Defo();
    std::cout << "== Fig. 17: Defo execution-type changes and decision "
                 "accuracy ==\n";
    TablePrinter t({"Model", "Variant", "Changed to act-style",
                    "Decision accuracy"});
    double sum_change[2] = {};
    double sum_acc[2] = {};
    int n[2] = {};
    for (const DefoRow &r : rows) {
        t.addRow(r.model, r.variant, TablePrinter::pct(r.changedFrac),
                 TablePrinter::pct(r.accuracy));
        const int idx = r.variant == "Defo" ? 0 : 1;
        sum_change[idx] += r.changedFrac;
        sum_acc[idx] += r.accuracy;
        ++n[idx];
    }
    t.addRow("AVG.", "Defo", TablePrinter::pct(sum_change[0] / n[0]),
             TablePrinter::pct(sum_acc[0] / n[0]));
    t.addRow("AVG.", "Defo+", TablePrinter::pct(sum_change[1] / n[1]),
             TablePrinter::pct(sum_acc[1] / n[1]));
    t.print();
    std::cout << "Paper: Defo reverts 14.4% of layers (Defo+ 38.29%; "
                 "Latte 81.6% under Defo+); accuracy 92% (Defo) and "
                 "88.11% (Defo+)\n";
    return 0;
}
