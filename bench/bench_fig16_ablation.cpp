/**
 * @file
 * Fig. 16 — cycle-count ablation of the Ditto mechanisms: dynamic
 * bit-width (DB), dynamic sparsity (DS), their combination, attention
 * differences, Defo and Defo+. Cycle counts relative to ITC, split
 * into compute and memory-stall components.
 */
#include <iostream>

#include "sim/experiments.h"
#include "sim/table_printer.h"

int
main()
{
    using namespace ditto;
    const auto rows = runFig16Ablation();
    std::cout << "== Fig. 16: relative cycle breakdown vs ITC ==\n";
    TablePrinter t({"Model", "Variant", "Compute", "Memory stall",
                    "Total"});
    struct Sum
    {
        double compute = 0.0, stall = 0.0;
        int n = 0;
    };
    std::vector<Sum> sums(fig16Variants().size());
    for (const AblationRow &r : rows) {
        t.addRow(r.model, r.variant, TablePrinter::num(r.computeCycles),
                 TablePrinter::num(r.stallCycles),
                 TablePrinter::num(r.computeCycles + r.stallCycles));
        for (size_t i = 0; i < fig16Variants().size(); ++i) {
            if (fig16Variants()[i] == r.variant) {
                sums[i].compute += r.computeCycles;
                sums[i].stall += r.stallCycles;
                ++sums[i].n;
            }
        }
    }
    for (size_t i = 0; i < fig16Variants().size(); ++i) {
        t.addRow("AVG.", fig16Variants()[i],
                 TablePrinter::num(sums[i].compute / sums[i].n),
                 TablePrinter::num(sums[i].stall / sums[i].n),
                 TablePrinter::num(
                     (sums[i].compute + sums[i].stall) / sums[i].n));
    }
    t.print();
    std::cout << "Paper: DB alone and DS alone exceed ITC cycles due to "
                 "memory stalls; Ditto cuts 39.24% of DB&DS&Attn's "
                 "stall cycles for an 18.32% total improvement\n";
    return 0;
}
