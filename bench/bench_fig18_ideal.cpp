/**
 * @file
 * Fig. 18 — Ditto and Ditto+ against their oracle-Defo (Ideal)
 * counterparts, all normalised to ITC.
 */
#include <iostream>

#include "sim/experiments.h"
#include "sim/table_printer.h"

int
main()
{
    using namespace ditto;
    const auto rows = runFig18Ideal();
    std::cout << "== Fig. 18: Ditto vs Ideal-Ditto (speedup vs ITC) ==\n";
    TablePrinter t({"Model", "Ditto", "Ideal-Ditto", "Ditto+",
                    "Ideal-Ditto+"});
    double frac = 0.0;
    double frac_plus = 0.0;
    for (const IdealRow &r : rows) {
        t.addRow(r.model, TablePrinter::num(r.ditto),
                 TablePrinter::num(r.idealDitto),
                 TablePrinter::num(r.dittoPlus),
                 TablePrinter::num(r.idealDittoPlus));
        frac += r.ditto / r.idealDitto;
        frac_plus += r.dittoPlus / r.idealDittoPlus;
    }
    t.print();
    std::cout << "Ditto reaches " << TablePrinter::pct(frac / rows.size())
              << " of Ideal-Ditto; Ditto+ reaches "
              << TablePrinter::pct(frac_plus / rows.size())
              << " of Ideal-Ditto+\n";
    std::cout << "Paper: 98.8% and 95.8% of the ideal designs\n";
    return 0;
}
