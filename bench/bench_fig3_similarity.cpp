/**
 * @file
 * Fig. 3b — average temporal vs spatial cosine similarity of
 * activations across the seven models, plus a Fig. 3a-style detail on
 * sampled activation sequences.
 */
#include <iostream>

#include "sim/experiments.h"
#include "sim/table_printer.h"
#include "stats/similarity.h"
#include "trace/calibrate.h"
#include "trace/sampler.h"

int
main()
{
    using namespace ditto;
    std::cout << "== Fig. 3b: temporal vs spatial cosine similarity ==\n";
    TablePrinter t({"Model", "Temporal cosine", "Spatial cosine"});
    double sum_t = 0.0;
    double sum_s = 0.0;
    const auto rows = runFig3Similarity();
    for (const SimilarityRow &r : rows) {
        t.addRow(r.model, TablePrinter::num(r.temporalCosine),
                 TablePrinter::num(r.spatialCosine));
        sum_t += r.temporalCosine;
        sum_s += r.spatialCosine;
    }
    t.addRow("AVG.", TablePrinter::num(sum_t / rows.size()),
             TablePrinter::num(sum_s / rows.size()));
    t.print();
    std::cout << "Paper: temporal avg 0.983 (all models > 0.947), "
                 "spatial avg 0.31\n";

    std::cout << "\n== Fig. 3a-style detail: sampled SDM sequence ==\n";
    MixtureSampler sampler(calibratedParams(ModelId::SDM), 11);
    const auto seq = sampler.sampleSequence(8192, 6);
    TablePrinter d({"Adjacent steps", "Cosine similarity"});
    for (size_t i = 1; i < seq.size(); ++i) {
        d.addRow("t" + std::to_string(i - 1) + " -> t" +
                     std::to_string(i),
                 TablePrinter::num(cosineSimilarity(seq[i - 1], seq[i]),
                                   4));
    }
    d.print();
    std::cout << "Paper Fig. 3a: per-layer cosine similarity 0.948.."
                 "0.9997\n";
    return 0;
}
