/**
 * @file
 * Fig. 15 — cross-applying the software techniques of Cambricon-D and
 * Ditto (attention differences, Defo, Defo+, sign-mask data flow).
 * Speedups normalised to the original Cambricon-D.
 */
#include <algorithm>
#include <iostream>

#include "sim/experiments.h"
#include "sim/table_printer.h"

int
main()
{
    using namespace ditto;
    const auto rows = runFig15Techniques();
    std::cout << "== Fig. 15: software techniques cross-applied "
                 "(normalised to Org. Cam-D) ==\n";
    std::vector<std::string> header = {"Variant"};
    std::vector<std::string> models;
    for (const TechniqueRow &r : rows) {
        if (models.empty() || models.back() != r.model) {
            if (std::find(models.begin(), models.end(), r.model) ==
                models.end()) {
                models.push_back(r.model);
                header.push_back(r.model);
            }
        }
    }
    header.push_back("AVG.");
    TablePrinter t(header);
    for (const std::string &v : fig15Variants()) {
        std::vector<std::string> cells = {v};
        double sum = 0.0;
        int n = 0;
        for (const std::string &m : models) {
            for (const TechniqueRow &r : rows) {
                if (r.variant == v && r.model == m) {
                    cells.push_back(TablePrinter::num(r.speedup));
                    sum += r.speedup;
                    ++n;
                }
            }
        }
        cells.push_back(TablePrinter::num(sum / n));
        // TablePrinter::addRow is variadic; use the vector directly via
        // a small local print path instead.
        switch (cells.size()) {
          case 9:
            t.addRow(cells[0], cells[1], cells[2], cells[3], cells[4],
                     cells[5], cells[6], cells[7], cells[8]);
            break;
          default:
            t.addRow(cells[0]);
            break;
        }
    }
    t.print();
    std::cout << "Paper: Cambricon-D gains 1.16x from all Ditto "
                 "techniques; Ditto and Ditto+ gain 1.068x and 1.055x "
                 "from sign-mask; every Cambricon-D variant stays below "
                 "the Ditto hardware\n";
    return 0;
}
