/**
 * @file
 * Fig. 4 — value ranges of activations vs temporal differences:
 * per-model averages (4b) and the per-step detail of the two named SDM
 * layers (4a).
 */
#include <iostream>

#include "sim/experiments.h"
#include "sim/table_printer.h"

int
main()
{
    using namespace ditto;
    std::cout << "== Fig. 4b: average value ranges ==\n";
    TablePrinter t({"Model", "Activation range", "Temporal diff range",
                    "Compression"});
    double sum_ratio = 0.0;
    const auto rows = runFig4ValueRange();
    for (const ValueRangeRow &r : rows) {
        t.addRow(r.model, TablePrinter::num(r.actRange, 2),
                 TablePrinter::num(r.diffRange, 2),
                 TablePrinter::num(r.ratio, 2) + "x");
        sum_ratio += r.ratio;
    }
    t.addRow("AVG.", "", "",
             TablePrinter::num(sum_ratio / rows.size(), 2) + "x");
    t.print();
    std::cout << "Paper: avg 8.96x narrower (DDPM 25.02x, CHUR 2.44x)\n";

    std::cout << "\n== Fig. 4a: SDM per-step ranges (PLMS 50 + extra) ==\n";
    for (const LayerRangeSeries &s : runFig4LayerDetail()) {
        std::cout << "layer " << s.layer << ":\n";
        TablePrinter d({"Steps", "Act range", "Diff range"});
        const int n = static_cast<int>(s.actRange.size());
        for (int start = 0; start < n; start += 10) {
            const int end = std::min(start + 10, n) - 1;
            double act = 0.0;
            double diff = 0.0;
            for (int i = start; i <= end; ++i) {
                act += s.actRange[i];
                diff += s.diffRange[i];
            }
            const int count = end - start + 1;
            d.addRow(std::to_string(start) + ".." + std::to_string(end),
                     TablePrinter::num(act / count, 2),
                     TablePrinter::num(diff / count, 2));
        }
        d.print();
    }
    std::cout << "Paper: conv-in act range 4.73 avg vs diff 0.23; "
                 "up.0.0.skip 21.88 vs 4.83\n";
    return 0;
}
