/**
 * @file
 * Fig. 5 — bit-width requirement of activations, spatial differences
 * and temporal differences under 8-bit dynamic quantization.
 */
#include <iostream>

#include "sim/experiments.h"
#include "sim/table_printer.h"

int
main()
{
    using namespace ditto;
    std::cout << "== Fig. 5: bit-width requirement "
                 "(zero / 4-bit / >4-bit) ==\n";
    TablePrinter t({"Model", "Kind", "Zero", "4-bit", ">4-bit"});
    BitFractions avg_a, avg_s, avg_t;
    const auto rows = runFig5Bitwidth();
    auto add = [&](const std::string &model, const char *kind,
                   const BitFractions &f) {
        t.addRow(model, kind, TablePrinter::pct(f.zero),
                 TablePrinter::pct(f.low4), TablePrinter::pct(f.full8));
    };
    for (const BitwidthRow &r : rows) {
        add(r.model, "Act.", r.act);
        add(r.model, "Spa Diff.", r.spatial);
        add(r.model, "Temp Diff.", r.temporal);
        avg_a.zero += r.act.zero / rows.size();
        avg_a.low4 += r.act.low4 / rows.size();
        avg_a.full8 += r.act.full8 / rows.size();
        avg_s.zero += r.spatial.zero / rows.size();
        avg_s.low4 += r.spatial.low4 / rows.size();
        avg_s.full8 += r.spatial.full8 / rows.size();
        avg_t.zero += r.temporal.zero / rows.size();
        avg_t.low4 += r.temporal.low4 / rows.size();
        avg_t.full8 += r.temporal.full8 / rows.size();
    }
    add("AVG.", "Act.", avg_a);
    add("AVG.", "Spa Diff.", avg_s);
    add("AVG.", "Temp Diff.", avg_t);
    t.print();
    std::cout << "Paper: temporal diffs 44.48% zero / 96.01% <=4-bit "
                 "(3.99% >4-bit); activations 42.28% >4-bit; spatial "
                 "diffs 25.58% >4-bit\n";
    return 0;
}
