/**
 * @file
 * Table I — evaluated models, datasets, samplers; plus the graph-level
 * size statistics of our reconstructions.
 */
#include <iostream>

#include "sim/experiments.h"
#include "sim/table_printer.h"

int
main()
{
    using namespace ditto;
    std::cout << "== Table I: evaluated models, datasets and samplers ==\n";
    TablePrinter t({"Abbr.", "Model", "Dataset", "Sampler & Step",
                    "Exec steps", "Compute layers", "GMACs/step",
                    "Weights (MB)"});
    int max_layers = 0;
    for (const ModelZooRow &r : runTable1()) {
        t.addRow(r.abbr, r.model, r.dataset, r.sampler, r.steps,
                 r.layers, TablePrinter::num(r.gmacsPerStep, 2),
                 TablePrinter::num(r.weightsMB, 1));
        max_layers = std::max(max_layers, r.layers);
    }
    t.print();
    std::cout << "\nMax compute layers across models: " << max_layers
              << " (paper sizes the Defo table for a 347-layer maximum,"
                 " rounded to 512 entries)\n";
    return 0;
}
