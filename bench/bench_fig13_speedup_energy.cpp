/**
 * @file
 * Fig. 13 — speedup (top) and relative energy with component breakdown
 * (bottom) of GPU / ITC / Diffy / Cambricon-D / Ditto / Ditto+ across
 * the seven models. Normalised to ITC.
 */
#include <iostream>

#include "sim/experiments.h"
#include "sim/table_printer.h"

int
main()
{
    using namespace ditto;
    const auto rows = runFig13Comparison();
    const auto gpu = runFig13Gpu();

    std::cout << "== Fig. 13 (top): speedup normalised to ITC ==\n";
    TablePrinter t({"Model", "GPU", "ITC", "Diffy", "Cam-D", "Ditto",
                    "Ditto+"});
    double sums[6] = {};
    int models = 0;
    for (size_t i = 0; i < gpu.size(); ++i) {
        const std::string &model = gpu[i].model;
        double v[6] = {gpu[i].speedup, 0, 0, 0, 0, 0};
        int k = 1;
        for (const ComparisonRow &r : rows)
            if (r.model == model)
                v[k++] = r.speedup;
        t.addRow(model, TablePrinter::num(v[0]), TablePrinter::num(v[1]),
                 TablePrinter::num(v[2]), TablePrinter::num(v[3]),
                 TablePrinter::num(v[4]), TablePrinter::num(v[5]));
        for (int j = 0; j < 6; ++j)
            sums[j] += v[j];
        ++models;
    }
    t.addRow("AVG.", TablePrinter::num(sums[0] / models),
             TablePrinter::num(sums[1] / models),
             TablePrinter::num(sums[2] / models),
             TablePrinter::num(sums[3] / models),
             TablePrinter::num(sums[4] / models),
             TablePrinter::num(sums[5] / models));
    t.print();
    std::cout << "Paper: Ditto 1.5x over ITC on average (1.56x over "
                 "Cambricon-D, Diffy 24% below Ditto); Ditto+ 1.06x "
                 "over Ditto\n";

    std::cout << "\n== Fig. 13 (bottom): relative energy vs ITC ==\n";
    TablePrinter e({"Model", "GPU", "ITC", "Diffy", "Cam-D", "Ditto",
                    "Ditto+"});
    double esums[6] = {};
    for (size_t i = 0; i < gpu.size(); ++i) {
        const std::string &model = gpu[i].model;
        double v[6] = {gpu[i].relativeEnergy, 0, 0, 0, 0, 0};
        int k = 1;
        for (const ComparisonRow &r : rows)
            if (r.model == model)
                v[k++] = r.relativeEnergy;
        e.addRow(model, TablePrinter::num(v[0], 1),
                 TablePrinter::num(v[1]), TablePrinter::num(v[2]),
                 TablePrinter::num(v[3]), TablePrinter::num(v[4]),
                 TablePrinter::num(v[5]));
        for (int j = 0; j < 6; ++j)
            esums[j] += v[j];
    }
    e.addRow("AVG.", TablePrinter::num(esums[0] / models, 1),
             TablePrinter::num(esums[1] / models),
             TablePrinter::num(esums[2] / models),
             TablePrinter::num(esums[3] / models),
             TablePrinter::num(esums[4] / models),
             TablePrinter::num(esums[5] / models));
    e.print();
    std::cout << "Paper: Ditto saves 17.74% energy vs ITC (Ditto+ "
                 "22.92%, Diffy 14.3%); Cambricon-D exceeds ITC on "
                 "average, driven by BED/CHUR/SDM\n";

    std::cout << "\n== Fig. 13 (bottom): Ditto energy breakdown ==\n";
    TablePrinter b({"Model", "CU", "EU", "VPU", "Defo", "SRAM", "DRAM",
                    "Static"});
    for (const ComparisonRow &r : rows) {
        if (r.hardware != "Ditto")
            continue;
        const EnergyBreakdown &d = r.energy;
        const double total = d.total();
        b.addRow(r.model, TablePrinter::pct(d.computeUnit / total),
                 TablePrinter::pct(d.encodingUnit / total),
                 TablePrinter::pct(d.vectorUnit / total),
                 TablePrinter::pct(d.defoUnit / total, 4),
                 TablePrinter::pct(d.sram / total),
                 TablePrinter::pct(d.dram / total),
                 TablePrinter::pct(d.staticIdle / total));
    }
    b.print();
    std::cout << "Paper: EU / VPU / Defo account for 2.23% / 2.9% / "
                 "~0.0001% of Ditto's energy\n";
    return 0;
}
