/**
 * @file
 * Table II — accuracy of the Ditto-executed models.
 *
 * The paper's FID/IS/CLIP scores require the original checkpoints and
 * datasets; the reproduction instead proves the property those scores
 * rest on: Ditto's difference processing is *bit-exact* against direct
 * quantized execution (so Ditto can only score what quantization
 * scores), measured on a full multi-step functional rollout, alongside
 * the SQNR of the quantized model against FP32. The paper's Table II
 * rows are printed for side-by-side reference.
 */
#include <iostream>

#include "sim/experiments.h"
#include "sim/table_printer.h"

int
main()
{
    using namespace ditto;
    const AccuracyProxy proxy = runTable2Accuracy();
    std::cout << "== Table II proxy: numerical fidelity of Ditto "
                 "execution ==\n";
    TablePrinter t({"Check", "Result"});
    t.addRow("Ditto vs direct quantized rollout",
             proxy.bitExact ? "bit-exact" : "MISMATCH");
    t.addRow("SQNR quantized vs FP32 rollout",
             TablePrinter::num(proxy.sqnrQuantDb, 2) + " dB");
    t.addRow("SQNR Ditto vs FP32 rollout",
             TablePrinter::num(proxy.sqnrDittoDb, 2) + " dB");
    t.print();

    std::cout << "\n== Paper Table II (reference; requires original "
                 "checkpoints) ==\n";
    TablePrinter p({"Model", "Metric", "FP32", "Ditto"});
    for (const AccuracyRow &r : proxy.paperRows)
        p.addRow(r.model, r.metric, r.paperFp32, r.paperDitto);
    p.print();
    std::cout << "Paper conclusion: Ditto preserves accuracy relative "
                 "to FP32; our bit-exactness result shows Ditto cannot "
                 "differ from its quantized baseline\n";
    return proxy.bitExact ? 0 : 1;
}
